package core

import (
	"testing"
	"testing/quick"
	"time"

	"coordcharge/internal/rack"
	"coordcharge/internal/units"
)

func cfg() Config { return DefaultConfig() }

func mkRacks(spec ...struct {
	p   rack.Priority
	dod units.Fraction
}) []RackInfo {
	out := make([]RackInfo, len(spec))
	for i, s := range spec {
		out[i] = RackInfo{ID: i, Name: "r", Priority: s.p, DOD: s.dod}
	}
	return out
}

func ri(id int, p rack.Priority, dod units.Fraction) RackInfo {
	return RackInfo{ID: id, Priority: p, DOD: dod}
}

func TestDefaultConfigValid(t *testing.T) {
	if err := cfg().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	c := cfg()
	c.Surface = nil
	if err := c.Validate(); err == nil {
		t.Error("nil surface accepted")
	}
	c = cfg()
	c.WattsPerAmp = 0
	if err := c.Validate(); err == nil {
		t.Error("zero WattsPerAmp accepted")
	}
	c = cfg()
	c.Resolution = 0
	if err := c.Validate(); err == nil {
		t.Error("zero resolution accepted")
	}
	c = cfg()
	delete(c.Deadlines, rack.P2)
	if err := c.Validate(); err == nil {
		t.Error("missing deadline accepted")
	}
}

// Table II deadlines.
func TestDefaultDeadlines(t *testing.T) {
	d := DefaultDeadlines()
	if d[rack.P1] != 30*time.Minute || d[rack.P2] != 60*time.Minute || d[rack.P3] != 90*time.Minute {
		t.Errorf("deadlines = %v", d)
	}
}

// Fig 9b / Fig 10: at <5% DOD, P1 needs 2 A while P2 and P3 need 1 A.
func TestSLACurrentPrototypeAnchors(t *testing.T) {
	c := cfg()
	if i, ok := c.SLACurrent(rack.P1, 0.04); !ok || i != 2 {
		t.Errorf("P1 SLA current = %v/%v, want 2 A", i, ok)
	}
	if i, ok := c.SLACurrent(rack.P2, 0.04); !ok || i != 1 {
		t.Errorf("P2 SLA current = %v/%v, want 1 A", i, ok)
	}
	if i, ok := c.SLACurrent(rack.P3, 0.04); !ok || i != 1 {
		t.Errorf("P3 SLA current = %v/%v, want 1 A", i, ok)
	}
}

func TestSLACurrentMonotoneInDODAndPriority(t *testing.T) {
	c := cfg()
	for _, p := range []rack.Priority{rack.P1, rack.P2, rack.P3} {
		prev := units.Current(0)
		for dod := 0.0; dod <= 1.0; dod += 0.05 {
			i, _ := c.SLACurrent(p, units.Fraction(dod))
			if i < prev {
				t.Errorf("%v SLA current decreased at dod=%.2f", p, dod)
			}
			prev = i
		}
	}
	// Stricter SLA needs at least as much current.
	for dod := 0.0; dod <= 1.0; dod += 0.05 {
		i1, _ := c.SLACurrent(rack.P1, units.Fraction(dod))
		i2, _ := c.SLACurrent(rack.P2, units.Fraction(dod))
		i3, _ := c.SLACurrent(rack.P3, units.Fraction(dod))
		if i1 < i2 || i2 < i3 {
			t.Errorf("SLA currents not ordered at dod=%.2f: P1=%v P2=%v P3=%v", dod, i1, i2, i3)
		}
	}
}

func TestPlanUnconstrainedGrantsAllSLAs(t *testing.T) {
	racks := []RackInfo{
		ri(0, rack.P1, 0.04), ri(1, rack.P1, 0.04),
		ri(2, rack.P2, 0.04), ri(3, rack.P3, 0.04),
	}
	plan := PlanPriorityAware(1*units.Megawatt, racks, cfg())
	for _, a := range plan {
		if !a.MeetsSLA {
			t.Errorf("rack %d (%v) misses SLA with unconstrained power", a.ID, a.Priority)
		}
		if a.Current != a.SLACurrent {
			t.Errorf("rack %d assigned %v, want SLA current %v", a.ID, a.Current, a.SLACurrent)
		}
	}
}

// The Fig 10 prototype scenario: 9 P1, 5 P2, 3 P3 racks at <5% DOD under an
// unconstrained RPP: P1 charge at 2 A, P2/P3 at 1 A.
func TestFig10PrototypePlan(t *testing.T) {
	var racks []RackInfo
	for i := 0; i < 9; i++ {
		racks = append(racks, ri(i, rack.P1, 0.04))
	}
	for i := 9; i < 14; i++ {
		racks = append(racks, ri(i, rack.P2, 0.04))
	}
	for i := 14; i < 17; i++ {
		racks = append(racks, ri(i, rack.P3, 0.04))
	}
	plan := PlanPriorityAware(190*units.Kilowatt, racks, cfg())
	for _, a := range plan {
		want := units.Current(1)
		if a.Priority == rack.P1 {
			want = 2
		}
		if a.Current != want {
			t.Errorf("%v rack %d assigned %v, want %v", a.Priority, a.ID, a.Current, want)
		}
		if !a.MeetsSLA {
			t.Errorf("%v rack %d misses SLA", a.Priority, a.ID)
		}
	}
}

func TestPlanRespectsAvailablePower(t *testing.T) {
	// 10 racks at 60% DOD; power for floors plus a couple of upgrades only.
	var racks []RackInfo
	for i := 0; i < 10; i++ {
		racks = append(racks, ri(i, rack.P2, 0.6))
	}
	c := cfg()
	// P2 at 60% DOD needs 2 A (T(2,0.6)=47 ≤ 60). Floors: 10×380 W. Budget
	// allows floors plus two upgrades of 380 W.
	available := units.Power(10*380 + 2*380)
	plan := PlanPriorityAware(available, racks, c)
	if got := TotalRechargePower(plan, c); got > available {
		t.Errorf("plan draws %v, exceeding available %v", got, available)
	}
	upgraded := 0
	for _, a := range plan {
		if a.Current > 1 {
			upgraded++
		}
	}
	if upgraded != 2 {
		t.Errorf("upgraded %d racks, want exactly 2", upgraded)
	}
}

func TestPlanPriorityOrdering(t *testing.T) {
	// Power for only one upgrade: it must go to the P1 rack even though the
	// P3 rack appears first.
	racks := []RackInfo{
		ri(0, rack.P3, 0.6),
		ri(1, rack.P1, 0.6),
	}
	c := cfg()
	// P1 at 60% DOD needs 4 A (T(4,0.6)=29 ≤ 30); upgrade cost 3×380 W.
	available := units.Power(2*380 + 3*380)
	plan := PlanPriorityAware(available, racks, c)
	byID := map[int]Assignment{}
	for _, a := range plan {
		byID[a.ID] = a
	}
	if byID[1].Current != byID[1].SLACurrent {
		t.Errorf("P1 rack not granted SLA current: %v vs %v", byID[1].Current, byID[1].SLACurrent)
	}
	if byID[0].Current != 1 {
		t.Errorf("P3 rack = %v, want floored at 1 A", byID[0].Current)
	}
}

func TestPlanLowestDODFirstWithinPriority(t *testing.T) {
	// Two P1 racks; power for one upgrade. The lower-DOD rack (cheaper
	// upgrade) must win, maximizing racks meeting SLA.
	racks := []RackInfo{
		ri(0, rack.P1, 0.6),  // needs 4 A
		ri(1, rack.P1, 0.25), // needs 3 A (T(2,0.25)=30.5 > 30, T(3,0.25)=22.75)
	}
	c := cfg()
	available := units.Power(2*380 + 2*380) // floors + one 2-amp upgrade
	plan := PlanPriorityAware(available, racks, c)
	byID := map[int]Assignment{}
	for _, a := range plan {
		byID[a.ID] = a
	}
	if !byID[1].MeetsSLA {
		t.Error("low-DOD P1 rack not satisfied first")
	}
	if byID[0].MeetsSLA {
		t.Error("high-DOD P1 rack satisfied despite insufficient power")
	}
}

func TestPlanZeroDODRacksIdle(t *testing.T) {
	racks := []RackInfo{ri(0, rack.P1, 0), ri(1, rack.P2, 0.3)}
	plan := PlanPriorityAware(1*units.Megawatt, racks, cfg())
	for _, a := range plan {
		if a.ID == 0 {
			if a.Current != 0 || !a.MeetsSLA {
				t.Errorf("zero-DOD rack: current=%v meets=%v", a.Current, a.MeetsSLA)
			}
		}
	}
}

func TestPlanInfeasibleSLAStillCharges(t *testing.T) {
	// P1 at 100% DOD cannot meet 30 min even at 5 A; it still charges.
	racks := []RackInfo{ri(0, rack.P1, 1.0)}
	plan := PlanPriorityAware(1*units.Megawatt, racks, cfg())
	a := plan[0]
	if a.Feasible {
		t.Error("100% DOD P1 SLA reported feasible")
	}
	if a.Current < 1 {
		t.Errorf("infeasible rack not charging: %v", a.Current)
	}
	if a.MeetsSLA {
		t.Error("infeasible rack reported meeting SLA")
	}
}

func TestPlanNeverExceedsAvailableProperty(t *testing.T) {
	c := cfg()
	prop := func(seed uint8, n uint8, availKW uint16) bool {
		nr := 1 + int(n)%40
		racks := make([]RackInfo, nr)
		for i := range racks {
			racks[i] = RackInfo{
				ID:       i,
				Priority: rack.Priority(1 + (i+int(seed))%3),
				DOD:      units.Fraction((i*7+int(seed))%101) / 100,
			}
		}
		available := units.Power(availKW) * units.Kilowatt / 8
		plan := PlanPriorityAware(available, racks, c)
		total := TotalRechargePower(plan, c)
		// The floors are mandatory; beyond them the plan must fit.
		var floors units.Power
		for _, a := range plan {
			if a.DOD > 0 {
				floors += 380
			}
		}
		budget := available
		if floors > budget {
			budget = floors // floor power is unavoidable
		}
		return total <= budget+1 // 1 W float tolerance
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPlanPriorityMonotoneProperty(t *testing.T) {
	// Among racks with identical priority and DOD (identical upgrade cost),
	// a denial implies every later-ordered twin is denied too: the grant is
	// a prefix in Algorithm 1's order. (Across different costs the
	// algorithm deliberately skips racks that do not fit and continues —
	// the paper's "maximizing the number of racks that meet the SLA".)
	c := cfg()
	prop := func(availRaw uint8) bool {
		racks := []RackInfo{
			ri(0, rack.P1, 0.5), ri(1, rack.P2, 0.5), ri(2, rack.P3, 0.5),
			ri(3, rack.P1, 0.5), ri(4, rack.P2, 0.5), ri(5, rack.P3, 0.5),
		}
		available := units.Power(availRaw) * 100
		plan := PlanPriorityAware(available, racks, c)
		type key struct {
			p   rack.Priority
			dod units.Fraction
		}
		deniedSeen := map[key]bool{}
		for _, a := range plan { // plan is in grant order
			k := key{a.Priority, a.DOD}
			granted := a.Current >= a.SLACurrent
			if deniedSeen[k] && granted {
				return false
			}
			if !granted {
				deniedSeen[k] = true
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPlanGlobalUniformRate(t *testing.T) {
	var racks []RackInfo
	for i := 0; i < 10; i++ {
		racks = append(racks, ri(i, rack.Priority(1+i%3), 0.5))
	}
	c := cfg()
	// Power for 2.5 A per rack → quantized down to 2 A.
	plan := PlanGlobal(units.Power(10*2.5*380), racks, c)
	for _, a := range plan {
		if a.Current != 2 {
			t.Errorf("global rate = %v, want 2 A", a.Current)
		}
	}
}

func TestPlanGlobalClampsToHardware(t *testing.T) {
	racks := []RackInfo{ri(0, rack.P1, 0.5)}
	c := cfg()
	// Abundant power → 5 A max.
	plan := PlanGlobal(1*units.Megawatt, racks, c)
	if plan[0].Current != 5 {
		t.Errorf("global rate = %v, want 5 A", plan[0].Current)
	}
	// No power → still the 1 A floor.
	plan = PlanGlobal(0, racks, c)
	if plan[0].Current != 1 {
		t.Errorf("global rate = %v, want 1 A floor", plan[0].Current)
	}
}

// The paper's key contrast (Fig 14): under constrained power the global
// algorithm penalizes P1 racks first (they need the highest current but get
// the uniform rate), while priority-aware protects them.
func TestPriorityAwareBeatsGlobalForP1(t *testing.T) {
	var racks []RackInfo
	for i := 0; i < 30; i++ {
		racks = append(racks, ri(i, rack.Priority(1+i%3), 0.5))
	}
	c := cfg()
	available := units.Power(30 * 1.6 * 380) // ~1.6 A per rack on average
	pa := SLAMetByPriority(PlanPriorityAware(available, racks, c))
	gl := SLAMetByPriority(PlanGlobal(available, racks, c))
	if pa[rack.P1] <= gl[rack.P1] {
		t.Errorf("priority-aware P1 SLAs (%d) not better than global (%d)", pa[rack.P1], gl[rack.P1])
	}
	// Global at 1 A uniform: P1 (needs 3-4 A at 50% DOD) all miss; P3
	// (1 A suffices: T(1,0.5)=80 ≤ 90) all pass.
	if gl[rack.P1] != 0 {
		t.Errorf("global satisfied %d P1 racks, want 0", gl[rack.P1])
	}
	if gl[rack.P3] != 10 {
		t.Errorf("global satisfied %d P3 racks, want 10", gl[rack.P3])
	}
}

func TestThrottleToMinimumOrder(t *testing.T) {
	active := []ActiveCharge{
		{RackInfo: ri(0, rack.P1, 0.3), Current: 3},
		{RackInfo: ri(1, rack.P3, 0.2), Current: 2},
		{RackInfo: ri(2, rack.P3, 0.8), Current: 5},
		{RackInfo: ri(3, rack.P2, 0.5), Current: 3},
	}
	c := cfg()
	// Excess of 1.5 kW: throttling rack 2 recovers 4×380=1520 W. Reverse
	// order picks the P3 with the highest DOD first.
	ids := ThrottleToMinimum(1500*units.Watt, active, c)
	if len(ids) != 1 || ids[0] != 2 {
		t.Errorf("throttle ids = %v, want [2]", ids)
	}
	// Larger excess (2.6 kW): next is the other P3 (380 W), then the P2
	// (760 W), reaching 2660 W ≥ 2600 W without touching the P1.
	ids = ThrottleToMinimum(2600*units.Watt, active, c)
	want := []int{2, 1, 3}
	if len(ids) != len(want) {
		t.Fatalf("throttle ids = %v, want %v", ids, want)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("throttle ids = %v, want %v", ids, want)
		}
	}
}

func TestThrottleSkipsRacksAtMinimum(t *testing.T) {
	active := []ActiveCharge{
		{RackInfo: ri(0, rack.P3, 0.9), Current: 1},
		{RackInfo: ri(1, rack.P1, 0.2), Current: 2},
	}
	ids := ThrottleToMinimum(10*units.Kilowatt, active, cfg())
	if len(ids) != 1 || ids[0] != 1 {
		t.Errorf("throttle ids = %v, want [1] (rack 0 already at minimum)", ids)
	}
}

func TestThrottleZeroExcess(t *testing.T) {
	active := []ActiveCharge{{RackInfo: ri(0, rack.P3, 0.9), Current: 5}}
	if ids := ThrottleToMinimum(0, active, cfg()); ids != nil {
		t.Errorf("throttle with no excess = %v, want nil", ids)
	}
}

func TestPostponeExtension(t *testing.T) {
	c := cfg()
	c.AllowPostpone = true
	var racks []RackInfo
	for i := 0; i < 10; i++ {
		racks = append(racks, ri(i, rack.Priority(1+i%3), 0.5))
	}
	// Power for only 3 floors.
	available := units.Power(3 * 380)
	plan := PlanPriorityAware(available, racks, c)
	var postponed, charging int
	for _, a := range plan {
		if a.Postponed {
			postponed++
			if a.Current != 0 {
				t.Errorf("postponed rack charging at %v", a.Current)
			}
		} else if a.Current > 0 {
			charging++
		}
	}
	if charging != 3 {
		t.Errorf("charging racks = %d, want 3", charging)
	}
	if postponed != 7 {
		t.Errorf("postponed racks = %d, want 7", postponed)
	}
	if got := TotalRechargePower(plan, c); got > available {
		t.Errorf("postpone plan draws %v > available %v", got, available)
	}
	// Charging is granted strictly in priority order: with power for only
	// three floors and four P1 racks, only P1 racks charge.
	for _, a := range plan {
		if a.Current > 0 && a.Priority != rack.P1 {
			t.Errorf("%v rack charging while P1 racks are postponed", a.Priority)
		}
	}
}

func TestSLAMetByPriorityCounts(t *testing.T) {
	plan := []Assignment{
		{RackInfo: ri(0, rack.P1, 0.1), MeetsSLA: true},
		{RackInfo: ri(1, rack.P1, 0.1), MeetsSLA: false},
		{RackInfo: ri(2, rack.P3, 0.1), MeetsSLA: true},
	}
	got := SLAMetByPriority(plan)
	if got[rack.P1] != 1 || got[rack.P2] != 0 || got[rack.P3] != 1 {
		t.Errorf("counts = %v", got)
	}
}
