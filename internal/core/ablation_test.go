package core

import (
	"testing"

	"coordcharge/internal/rack"
	"coordcharge/internal/units"
)

func mixedPopulation(n int) []RackInfo {
	out := make([]RackInfo, n)
	for i := range out {
		out[i] = RackInfo{
			ID:       i,
			Priority: rack.Priority(1 + i%3),
			DOD:      units.Fraction(10+(i*13)%81) / 100,
		}
	}
	return out
}

func TestOrderPolicyStrings(t *testing.T) {
	want := map[OrderPolicy]string{
		OrderPriorityThenDOD: "priority+dod",
		OrderPriorityOnly:    "priority-only",
		OrderDODOnly:         "dod-only",
		OrderArrival:         "arrival",
		OrderPolicy(9):       "unknown",
	}
	for o, w := range want {
		if got := o.String(); got != w {
			t.Errorf("%d.String() = %q, want %q", int(o), got, w)
		}
	}
}

// Algorithm 1's order dominates the alternatives on the paper's objective:
// P1 SLAs first, and within equal priorities, the count of SLAs met.
func TestOrderAblationAlgorithm1Dominates(t *testing.T) {
	racks := mixedPopulation(60)
	available := 60*380*units.Watt + 20*380*units.Watt // floors + ~20 amps of upgrades

	results := map[OrderPolicy]map[rack.Priority]int{}
	for _, o := range []OrderPolicy{OrderPriorityThenDOD, OrderPriorityOnly, OrderDODOnly, OrderArrival} {
		cfg := DefaultConfig()
		cfg.Order = o
		results[o] = SLAMetByPriority(PlanPriorityAware(available, racks, cfg))
	}
	alg1 := results[OrderPriorityThenDOD]
	// Priority-blind orders must not beat Algorithm 1 on P1 SLAs.
	for _, o := range []OrderPolicy{OrderDODOnly, OrderArrival} {
		if results[o][rack.P1] > alg1[rack.P1] {
			t.Errorf("%v beat Algorithm 1 on P1 SLAs: %d > %d", o, results[o][rack.P1], alg1[rack.P1])
		}
	}
	// Priority-only (ignoring DOD) must not beat Algorithm 1 on total SLAs.
	sum := func(m map[rack.Priority]int) int { return m[rack.P1] + m[rack.P2] + m[rack.P3] }
	if sum(results[OrderPriorityOnly]) > sum(alg1) {
		t.Errorf("priority-only beat Algorithm 1 on total SLAs: %d > %d", sum(results[OrderPriorityOnly]), sum(alg1))
	}
}

func TestQuantisationAblation(t *testing.T) {
	// Finer override resolution can only help: more racks meet SLA with the
	// same power budget.
	racks := mixedPopulation(40)
	available := 40*380*units.Watt + 12*380*units.Watt

	coarse := DefaultConfig()
	fine := DefaultConfig()
	fine.Resolution = 0.1
	sum := func(m map[rack.Priority]int) int { return m[rack.P1] + m[rack.P2] + m[rack.P3] }
	nc := sum(SLAMetByPriority(PlanPriorityAware(available, racks, coarse)))
	nf := sum(SLAMetByPriority(PlanPriorityAware(available, racks, fine)))
	if nf < nc {
		t.Errorf("fine resolution met fewer SLAs: %d vs %d", nf, nc)
	}
}

func TestThrottleProportionalCoversExcess(t *testing.T) {
	cfg := DefaultConfig()
	active := []ActiveCharge{
		{RackInfo: RackInfo{ID: 0, Priority: rack.P1, DOD: 0.3}, Current: 4},
		{RackInfo: RackInfo{ID: 1, Priority: rack.P2, DOD: 0.5}, Current: 3},
		{RackInfo: RackInfo{ID: 2, Priority: rack.P3, DOD: 0.7}, Current: 5},
	}
	excess := 2000 * units.Watt // total 12 A × 380 = 4560 W; target 2560 W
	ovr := ThrottleProportional(excess, active, cfg)
	if len(ovr) == 0 {
		t.Fatal("no overrides produced")
	}
	current := map[int]units.Current{0: 4, 1: 3, 2: 5}
	for _, o := range ovr {
		if o.Current >= current[o.ID] {
			t.Errorf("override did not lower rack %d: %v", o.ID, o.Current)
		}
		if o.Current < 1 {
			t.Errorf("override below hardware floor: %v", o.Current)
		}
		current[o.ID] = o.Current
	}
	var after units.Power
	for _, i := range current {
		after += units.Power(float64(i) * cfg.WattsPerAmp)
	}
	// Proportional scaling recovers the excess unless floored.
	if after > 4560*units.Watt-excess+1 {
		t.Errorf("after throttle %v, want ≤ %v", after, 4560*units.Watt-excess)
	}
}

func TestThrottleProportionalFloorsAtMinimum(t *testing.T) {
	cfg := DefaultConfig()
	active := []ActiveCharge{
		{RackInfo: RackInfo{ID: 0, Priority: rack.P1, DOD: 0.3}, Current: 2},
	}
	ovr := ThrottleProportional(10*units.Kilowatt, active, cfg)
	if len(ovr) != 1 || ovr[0].Current != 1 {
		t.Errorf("overrides = %v, want single floor-1A", ovr)
	}
}

func TestThrottleProportionalNoExcess(t *testing.T) {
	if got := ThrottleProportional(0, []ActiveCharge{{Current: 5}}, DefaultConfig()); got != nil {
		t.Errorf("overrides with no excess = %v", got)
	}
	if got := ThrottleProportional(100, nil, DefaultConfig()); got != nil {
		t.Errorf("overrides with no active charges = %v", got)
	}
}

// The design-choice contrast: reverse-order minimum throttling shields P1
// racks entirely, while proportional scaling degrades everyone.
func TestThrottlePolicyContrast(t *testing.T) {
	cfg := DefaultConfig()
	var active []ActiveCharge
	for i := 0; i < 12; i++ {
		active = append(active, ActiveCharge{
			RackInfo: RackInfo{ID: i, Priority: rack.Priority(1 + i%3), DOD: 0.5},
			Current:  3,
		})
	}
	excess := 6 * 380 * units.Watt // recover six amps' worth
	reverseIDs := ThrottleToMinimum(excess, active, cfg)
	for _, id := range reverseIDs {
		if active[id].Priority == rack.P1 {
			t.Errorf("reverse-order throttle touched P1 rack %d", id)
		}
	}
	prop := ThrottleProportional(excess, active, cfg)
	touchedP1 := false
	for _, o := range prop {
		if active[o.ID].Priority == rack.P1 {
			touchedP1 = true
		}
	}
	if !touchedP1 {
		t.Error("proportional throttle unexpectedly spared P1 racks")
	}
}
