// Package core implements the paper's primary contribution: coordinated,
// priority-aware battery charging (§IV).
//
// Given the available power at a circuit breaker and each rack's priority
// and depth of discharge, the planner:
//
//  1. computes the SLA charging current for every rack by inverting the
//     empirical charge-time surface against the priority's charging-time SLA
//     (Table II / Fig 9b);
//  2. runs Algorithm 1 — highest-priority-lowest-discharge-first — granting
//     each rack its SLA current while available power remains, with every
//     charging rack floored at the 1 A hardware minimum;
//  3. on a later overload, selects racks in the reverse order
//     (lowest-priority-highest-discharge-first) to throttle to the minimum;
//     server power capping is the caller's last resort beyond that.
//
// The package also implements the evaluation's baseline, the global charging
// algorithm (uniform rate, priority-blind), and the paper's future-work
// extension of postponing low-priority charges entirely.
package core

import (
	"fmt"
	"sort"
	"time"

	"coordcharge/internal/battery"
	"coordcharge/internal/rack"
	"coordcharge/internal/units"
)

// DefaultDeadlines is Table II: the charging-time SLA per rack priority that
// meets each priority's availability-of-redundancy target.
func DefaultDeadlines() map[rack.Priority]time.Duration {
	return map[rack.Priority]time.Duration{
		rack.P1: 30 * time.Minute,
		rack.P2: 60 * time.Minute,
		rack.P3: 90 * time.Minute,
	}
}

// Config carries the planner's battery model and policy knobs.
type Config struct {
	// Surface is the empirical charge-time surface (Fig 5 data).
	Surface *battery.Surface
	// Deadlines maps priority to its charging-time SLA (Table II).
	Deadlines map[rack.Priority]time.Duration
	// Resolution is the charging-current override grid. The production
	// charger takes integer-amp overrides, so the default is 1 A.
	Resolution units.Current
	// WattsPerAmp converts a per-BBU charging current to rack-input recharge
	// power (1.9 kW at 5 A → 380 W/A).
	WattsPerAmp float64
	// AllowPostpone enables the future-work extension (§IV-A): racks whose
	// SLA current does not fit are assigned zero current (charge postponed)
	// instead of the 1 A floor, freeing their floor power for others.
	AllowPostpone bool
	// FailSafeCurrent is the degraded-mode charging current a rack's local
	// fail-safe watchdog reverts to when controller contact is lost (the
	// paper's safe low-current policy). Zero falls back to the surface's
	// hardware minimum.
	FailSafeCurrent units.Current
	// Order is the grant order (ablation knob; the default is Algorithm 1's
	// highest-priority-lowest-discharge-first).
	Order OrderPolicy

	// curves memoizes the per-priority SLA-current inversions (Fig 9b).
	// Config is passed by value, so the cache rides along as a shared
	// pointer; every lookup revalidates the cached curve against the live
	// Surface/Deadlines/Resolution and silently falls back to the direct
	// surface inversion on any mismatch — mutating a precomputed Config
	// stays correct, it just stops benefiting from the cache.
	curves *slaCurves
}

// slaCurves is the precomputed planner cache, indexed by rack priority.
type slaCurves struct {
	surface    *battery.Surface
	byPriority [rack.P3 + 1]*battery.SLACurve
}

// DefaultConfig returns the production configuration, with the per-priority
// SLA-current curves precomputed.
func DefaultConfig() Config {
	return Config{
		Surface:     battery.Fig5Surface(),
		Deadlines:   DefaultDeadlines(),
		Resolution:  1,
		WattsPerAmp: battery.RackWattsPerAmp,
		// Degraded mode charges at the 1 A hardware minimum: ~380 W of
		// recharge per rack, small enough that a whole partitioned row
		// stays inside its breaker's trip curve.
		FailSafeCurrent: 1,
	}.Precomputed()
}

// Precomputed returns c with the per-priority SLA-current curves memoized:
// SLACurrent and SLA checks answer from precomputed surface inversions
// instead of re-scanning the charge-time surface on every plan. Results are
// bit-identical to the uncached path (the curves are exact caches), and a
// Config whose Surface, Deadlines, or Resolution is mutated afterwards
// falls back to direct inversion automatically.
func (c Config) Precomputed() Config {
	if c.Surface == nil {
		return c
	}
	sc := &slaCurves{surface: c.Surface}
	for _, p := range []rack.Priority{rack.P1, rack.P2, rack.P3} {
		if d, ok := c.Deadlines[p]; ok && d > 0 && c.Resolution > 0 {
			sc.byPriority[p] = battery.NewSLACurve(c.Surface, d, c.Resolution)
		}
	}
	c.curves = sc
	return c
}

// curve returns the valid cached SLA curve for priority p, or nil when no
// cache applies (not precomputed, or the config diverged since).
func (c Config) curve(p rack.Priority) *battery.SLACurve {
	if c.curves == nil || !p.Valid() || c.curves.surface != c.Surface {
		return nil
	}
	cv := c.curves.byPriority[p]
	if cv == nil || cv.Deadline() != c.Deadlines[p] || cv.Resolution() != c.Resolution {
		return nil
	}
	return cv
}

// SafeCurrent returns the effective degraded-mode charging current: the
// configured FailSafeCurrent, or the surface's hardware minimum when unset.
func (c Config) SafeCurrent() units.Current {
	if c.FailSafeCurrent > 0 {
		return c.FailSafeCurrent
	}
	return c.Surface.MinCurrent()
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Surface == nil {
		return fmt.Errorf("core: nil charge-time surface")
	}
	if c.WattsPerAmp <= 0 {
		return fmt.Errorf("core: non-positive WattsPerAmp %v", c.WattsPerAmp)
	}
	if c.Resolution <= 0 {
		return fmt.Errorf("core: non-positive current resolution %v", c.Resolution)
	}
	for _, p := range []rack.Priority{rack.P1, rack.P2, rack.P3} {
		if d, ok := c.Deadlines[p]; !ok || d <= 0 {
			return fmt.Errorf("core: missing or non-positive deadline for %v", p)
		}
	}
	if c.FailSafeCurrent < 0 {
		return fmt.Errorf("core: negative FailSafeCurrent %v", c.FailSafeCurrent)
	}
	if c.FailSafeCurrent > 0 && (c.FailSafeCurrent < c.Surface.MinCurrent() || c.FailSafeCurrent > c.Surface.MaxCurrent()) {
		return fmt.Errorf("core: FailSafeCurrent %v outside the charger range [%v, %v]",
			c.FailSafeCurrent, c.Surface.MinCurrent(), c.Surface.MaxCurrent())
	}
	return nil
}

// SLACurrent returns the charging current required for a rack of priority p
// at depth of discharge dod to meet its charging-time SLA (the Fig 9b
// curves), and whether the SLA is achievable within the charger's range.
func (c Config) SLACurrent(p rack.Priority, dod units.Fraction) (units.Current, bool) {
	if cv := c.curve(p); cv != nil {
		return cv.RequiredCurrent(dod)
	}
	return c.Surface.RequiredCurrent(dod, c.Deadlines[p], c.Resolution)
}

// SLACurrentWithin is SLACurrent with part of the deadline already spent:
// it returns the charging current required to finish within the remaining
// budget. A rack's SLA clock starts when its charge starts, not when an
// admission queue finally grants it, so time spent waiting — storm
// admission, a deferred window, a demand-response shave — must come out of
// the current the grant is sized with. With the full budget remaining it
// resolves through the memoized SLA curve, bit-identically to SLACurrent.
func (c Config) SLACurrentWithin(p rack.Priority, dod units.Fraction, remaining time.Duration) (units.Current, bool) {
	if remaining >= c.Deadlines[p] {
		return c.SLACurrent(p, dod)
	}
	if remaining <= 0 {
		return c.Surface.MaxCurrent(), false
	}
	return c.Surface.RequiredCurrent(dod, remaining, c.Resolution)
}

// RackInfo is the controller's view of one rack at the start of a charging
// sequence.
type RackInfo struct {
	// ID is a stable index used for deterministic tie-breaking.
	ID       int
	Name     string
	Priority rack.Priority
	// DOD is the depth of discharge estimated from the open transition.
	DOD units.Fraction
}

// Assignment is the planner's decision for one rack.
type Assignment struct {
	RackInfo
	// Current is the charging current to apply; zero means the rack has
	// nothing to charge (DOD zero) or its charge is postponed.
	Current units.Current
	// SLACurrent is the minimum current that meets the rack's SLA.
	SLACurrent units.Current
	// Feasible is false when no current within hardware range meets the SLA.
	Feasible bool
	// MeetsSLA reports whether the assigned current charges the rack within
	// its deadline.
	MeetsSLA bool
	// Postponed is true when the extension deferred this rack's charge.
	Postponed bool
}

// RechargePower returns the rack-input recharge power this assignment draws.
func (a Assignment) RechargePower(wattsPerAmp float64) units.Power {
	return units.Power(float64(a.Current) * wattsPerAmp)
}

// meetsSLA evaluates whether current i charges the rack within its deadline.
func (c Config) meetsSLA(ri RackInfo, i units.Current) bool {
	if ri.DOD <= 0 {
		return true
	}
	if i <= 0 {
		return false
	}
	if cv := c.curve(ri.Priority); cv != nil {
		if meets, ok := cv.Meets(i, ri.DOD); ok {
			return meets
		}
	}
	return c.Surface.ChargeTime(i, ri.DOD) <= c.Deadlines[ri.Priority]
}

// PlanPriorityAware implements Algorithm 1, the
// highest-priority-lowest-discharge-first charging plan. available is the
// breaker's available power for battery recharging (limit minus IT load) at
// the start of the charging sequence. Racks with zero DOD receive no charge.
// Every discharged rack is floored at the minimum current (the hardware
// charges at ≥1 A once a charge begins) unless postponing is enabled and its
// floor does not fit.
//
// The returned assignments are in Algorithm 1's grant order.
func PlanPriorityAware(available units.Power, racks []RackInfo, cfg Config) []Assignment {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	min := cfg.Surface.MinCurrent()
	out := make([]Assignment, 0, len(racks))
	for _, ri := range racks {
		a := Assignment{RackInfo: ri}
		if ri.DOD > 0 {
			a.SLACurrent, a.Feasible = cfg.SLACurrent(ri.Priority, ri.DOD)
			a.Current = min // step 2: initialize to the 1 A minimum
		}
		out = append(out, a)
	}
	sortForGrantWith(out, cfg.Order)
	// Budget: the floors of all charging racks are committed first, since
	// the chargers draw at least the minimum once charging begins.
	budget := float64(available)
	if !cfg.AllowPostpone {
		for i := range out {
			if out[i].Current > 0 {
				budget -= float64(min) * cfg.WattsPerAmp
			}
		}
	}
	// Grant pass in Algorithm 1 order.
	for i := range out {
		a := &out[i]
		if a.DOD <= 0 {
			a.MeetsSLA = true
			continue
		}
		if cfg.AllowPostpone {
			// The floor itself must fit; otherwise postpone this rack.
			if budget < float64(min)*cfg.WattsPerAmp {
				a.Current = 0
				a.Postponed = true
				continue
			}
			budget -= float64(min) * cfg.WattsPerAmp
		}
		// When the SLA is infeasible within hardware range, SLACurrent is
		// the 5 A maximum: the best-effort setting (Fig 9b saturates there).
		upgrade := float64(a.SLACurrent-min) * cfg.WattsPerAmp
		if upgrade <= budget {
			budget -= upgrade
			a.Current = a.SLACurrent
		}
		a.MeetsSLA = cfg.meetsSLA(a.RackInfo, a.Current)
	}
	return out
}

// PlanGlobal implements the evaluation's baseline, the global charging
// algorithm: it looks only at available power and charges every discharged
// rack at the same rate, ignoring priority and DOD. The uniform rate is the
// largest current on the resolution grid whose aggregate recharge power fits
// within available, floored at the hardware minimum.
func PlanGlobal(available units.Power, racks []RackInfo, cfg Config) []Assignment {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	min, max := cfg.Surface.MinCurrent(), cfg.Surface.MaxCurrent()
	var charging int
	for _, ri := range racks {
		if ri.DOD > 0 {
			charging++
		}
	}
	uniform := max
	if charging > 0 {
		perRack := float64(available) / float64(charging) / cfg.WattsPerAmp
		uniform = units.Current(perRack)
		// Round down to the resolution grid.
		steps := int(uniform / cfg.Resolution)
		uniform = units.Current(steps) * cfg.Resolution
		uniform = uniform.Clamp(min, max)
	}
	out := make([]Assignment, 0, len(racks))
	for _, ri := range racks {
		a := Assignment{RackInfo: ri}
		if ri.DOD > 0 {
			a.SLACurrent, a.Feasible = cfg.SLACurrent(ri.Priority, ri.DOD)
			a.Current = uniform
		}
		a.MeetsSLA = cfg.meetsSLA(ri, a.Current)
		out = append(out, a)
	}
	return out
}

// ActiveCharge is the controller's view of a rack mid-charge, used when an
// overload is detected during the charging period.
type ActiveCharge struct {
	RackInfo
	// Current is the setpoint the rack is charging at now.
	Current units.Current
}

// ThrottleToMinimum selects racks to set to the minimum charging current in
// the paper's reverse order — lowest-priority-highest-discharge-first —
// until the projected recovered power covers excess. It returns the IDs of
// the racks to throttle, in order. If throttling every rack cannot cover the
// excess, all throttleable racks are returned and the caller must fall back
// to server power capping.
func ThrottleToMinimum(excess units.Power, active []ActiveCharge, cfg Config) []int {
	if excess <= 0 {
		return nil
	}
	min := cfg.Surface.MinCurrent()
	order := make([]ActiveCharge, 0, len(active))
	for _, ac := range active {
		if ac.Current > min {
			order = append(order, ac)
		}
	}
	sort.SliceStable(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if a.Priority != b.Priority {
			return a.Priority > b.Priority // lowest priority first
		}
		if a.DOD != b.DOD {
			return a.DOD > b.DOD // highest discharge first
		}
		return a.ID < b.ID
	})
	var ids []int
	recovered := 0.0
	for _, ac := range order {
		if recovered >= float64(excess) {
			break
		}
		recovered += float64(ac.Current-min) * cfg.WattsPerAmp
		ids = append(ids, ac.ID)
	}
	return ids
}

// SLAMetByPriority counts, per priority, the racks whose assignment meets
// the charging-time SLA (the Fig 14/15 metric).
func SLAMetByPriority(assignments []Assignment) map[rack.Priority]int {
	out := make(map[rack.Priority]int)
	for _, a := range assignments {
		if a.MeetsSLA {
			out[a.Priority]++
		}
	}
	return out
}

// TotalRechargePower sums the recharge power of a set of assignments.
func TotalRechargePower(assignments []Assignment, cfg Config) units.Power {
	var total units.Power
	for _, a := range assignments {
		total += a.RechargePower(cfg.WattsPerAmp)
	}
	return total
}
