package core

import (
	"sort"

	"coordcharge/internal/units"
)

// OrderPolicy selects the grant order used by PlanPriorityAware: the
// ablation axis for Algorithm 1's highest-priority-lowest-discharge-first
// design choice.
type OrderPolicy int

// Grant orders.
const (
	// OrderPriorityThenDOD is Algorithm 1: priority first, lowest DOD first
	// within a priority.
	OrderPriorityThenDOD OrderPolicy = iota
	// OrderPriorityOnly sorts by priority alone (arrival order within).
	OrderPriorityOnly
	// OrderDODOnly sorts by lowest DOD alone, ignoring priority.
	OrderDODOnly
	// OrderArrival grants in input order.
	OrderArrival
)

// String names the order policy.
func (o OrderPolicy) String() string {
	switch o {
	case OrderPriorityThenDOD:
		return "priority+dod"
	case OrderPriorityOnly:
		return "priority-only"
	case OrderDODOnly:
		return "dod-only"
	case OrderArrival:
		return "arrival"
	default:
		return "unknown"
	}
}

// sortForGrantWith orders assignments according to the policy, with ID as
// the final deterministic tie-break.
func sortForGrantWith(racks []Assignment, order OrderPolicy) {
	sort.SliceStable(racks, func(i, j int) bool {
		a, b := racks[i], racks[j]
		switch order {
		case OrderPriorityOnly:
			if a.Priority != b.Priority {
				return a.Priority < b.Priority
			}
		case OrderDODOnly:
			if a.DOD != b.DOD {
				return a.DOD < b.DOD
			}
		case OrderArrival:
		default:
			if a.Priority != b.Priority {
				return a.Priority < b.Priority
			}
			if a.DOD != b.DOD {
				return a.DOD < b.DOD
			}
		}
		return a.ID < b.ID
	})
}

// Override pairs a rack with a new charging current.
type Override struct {
	ID      int
	Current units.Current
}

// ThrottleProportional is the ablation alternative to ThrottleToMinimum: on
// an overload it scales every active charge down by the same factor
// (quantised to the resolution grid, floored at the hardware minimum)
// instead of zeroing out the lowest-priority racks first. It returns the
// overrides to apply. Like the reverse-order policy it may fail to cover the
// excess, in which case the caller falls back to capping.
func ThrottleProportional(excess units.Power, active []ActiveCharge, cfg Config) []Override {
	if excess <= 0 || len(active) == 0 {
		return nil
	}
	min := cfg.Surface.MinCurrent()
	var total units.Power
	for _, ac := range active {
		total += units.Power(float64(ac.Current) * cfg.WattsPerAmp)
	}
	if total <= 0 {
		return nil
	}
	target := total - excess
	factor := float64(target) / float64(total)
	if factor < 0 {
		factor = 0
	}
	var out []Override
	for _, ac := range active {
		want := units.Current(float64(ac.Current) * factor)
		// Quantise down so the aggregate stays at or below target.
		steps := int(want / cfg.Resolution)
		want = (units.Current(steps) * cfg.Resolution).Clamp(min, cfg.Surface.MaxCurrent())
		if want < ac.Current {
			out = append(out, Override{ID: ac.ID, Current: want})
		}
	}
	return out
}
