package server

import (
	"testing"

	"coordcharge/internal/rack"
	"coordcharge/internal/units"
)

func TestPoolStateRoundTrip(t *testing.T) {
	p := Uniform("web", 8, rack.P3, 200*units.Watt)
	p.Shed(500*units.Watt, 0.5)
	st := p.ExportState()

	q := Uniform("web", 8, rack.P3, 200*units.Watt)
	if err := q.RestoreState(st); err != nil {
		t.Fatal(err)
	}
	if q.Draw() != p.Draw() || q.CappedCount() != p.CappedCount() {
		t.Fatalf("restored pool draw %v (%d capped), want %v (%d capped)",
			q.Draw(), q.CappedCount(), p.Draw(), p.CappedCount())
	}
	// Further shedding must behave identically.
	a := p.Shed(300*units.Watt, 0.5)
	b := q.Shed(300*units.Watt, 0.5)
	if a != b {
		t.Fatalf("post-restore shed diverged: %v vs %v", a, b)
	}
}

func TestPoolStateRejectsMismatch(t *testing.T) {
	p := Uniform("web", 4, rack.P3, 200*units.Watt)
	if err := p.RestoreState(Uniform("web", 5, rack.P3, 200*units.Watt).ExportState()); err == nil {
		t.Fatal("size mismatch accepted")
	}
	if err := p.RestoreState(Uniform("db", 4, rack.P1, 200*units.Watt).ExportState()); err == nil {
		t.Fatal("name mismatch accepted")
	}
}
