package server

import "fmt"

// PoolState is a pool's serializable state: every server with its demand and
// cap, in pool order. Server structs are plain data, so the state is the
// servers themselves.
type PoolState struct {
	Servers []Server `json:"servers"`
}

// ExportState captures the pool's servers.
func (p *Pool) ExportState() PoolState {
	return PoolState{Servers: p.Servers()}
}

// RestoreState overwrites the pool's servers from a checkpoint. The state
// must describe the same pool: the server count and names (in order) must
// match, so a checkpoint can never be restored into a different capping
// domain.
func (p *Pool) RestoreState(st PoolState) error {
	if len(st.Servers) != len(p.servers) {
		return fmt.Errorf("server: checkpoint has %d servers, pool has %d", len(st.Servers), len(p.servers))
	}
	for i, s := range st.Servers {
		if s.Name != p.servers[i].Name {
			return fmt.Errorf("server: checkpoint server %d is %q, pool has %q", i, s.Name, p.servers[i].Name)
		}
	}
	copy(p.servers, st.Servers)
	return nil
}
