// Package server models the servers inside a rack at the granularity Dynamo
// actually caps them: individually, ordered by the priority of the services
// they run (paper §II-B: "Dynamo automatically caps the power consumption of
// servers (according to priority of services running on those servers)").
// The fleet-scale simulations treat a rack's IT load as a scalar; this
// package provides the per-server ledger behind that scalar for analyses
// that count capped servers — the paper's Case II reports "more than ten
// thousand servers" capped during one building-wide event.
package server

import (
	"fmt"
	"sort"

	"coordcharge/internal/rack"
	"coordcharge/internal/units"
)

// Server is one machine: a demand and the priority of its service.
type Server struct {
	Name     string
	Priority rack.Priority
	// Demand is the server's uncapped draw.
	Demand units.Power
	// Cap is the Dynamo limit, meaningful only when HasCap is set (a cap of
	// exactly zero watts — a fully shed server — is representable).
	Cap units.Power
	// HasCap marks the cap as active.
	HasCap bool
}

// Draw returns the server's actual consumption under its cap.
func (s Server) Draw() units.Power {
	if s.HasCap && s.Demand > s.Cap {
		return s.Cap
	}
	return s.Demand
}

// Capped reports whether the cap is binding.
func (s Server) Capped() bool { return s.HasCap && s.Demand > s.Cap }

// Pool is the set of servers in one rack (or any capping domain).
type Pool struct {
	servers []Server
}

// NewPool builds a pool; server names must be unique and demands
// non-negative.
func NewPool(servers []Server) (*Pool, error) {
	seen := make(map[string]bool, len(servers))
	for _, s := range servers {
		if s.Name == "" {
			return nil, fmt.Errorf("server: empty name")
		}
		if seen[s.Name] {
			return nil, fmt.Errorf("server: duplicate name %q", s.Name)
		}
		seen[s.Name] = true
		if s.Demand < 0 {
			return nil, fmt.Errorf("server: %s has negative demand", s.Name)
		}
		if !s.Priority.Valid() {
			return nil, fmt.Errorf("server: %s has invalid priority %d", s.Name, int(s.Priority))
		}
	}
	return &Pool{servers: append([]Server(nil), servers...)}, nil
}

// Uniform builds a pool of n identical servers (the web-tier shape: the
// paper's racks hold tens of ~200 W machines).
func Uniform(prefix string, n int, p rack.Priority, demand units.Power) *Pool {
	servers := make([]Server, n)
	for i := range servers {
		servers[i] = Server{Name: fmt.Sprintf("%s-%02d", prefix, i), Priority: p, Demand: demand}
	}
	pool, err := NewPool(servers)
	if err != nil {
		panic(err) // generated names are unique; unreachable
	}
	return pool
}

// Servers returns a copy of the pool's servers.
func (p *Pool) Servers() []Server { return append([]Server(nil), p.servers...) }

// Len returns the number of servers.
func (p *Pool) Len() int { return len(p.servers) }

// Demand returns the pool's aggregate uncapped demand.
func (p *Pool) Demand() units.Power {
	var total units.Power
	for _, s := range p.servers {
		total += s.Demand
	}
	return total
}

// Draw returns the pool's aggregate consumption under current caps.
func (p *Pool) Draw() units.Power {
	var total units.Power
	for _, s := range p.servers {
		total += s.Draw()
	}
	return total
}

// CappedCount returns how many servers have a binding cap.
func (p *Pool) CappedCount() int {
	n := 0
	for _, s := range p.servers {
		if s.Capped() {
			n++
		}
	}
	return n
}

// Shed caps servers until the pool's draw falls by at least amount,
// lowest-priority servers first (stable within a priority), each server cut
// to no less than floor (Dynamo never powers servers fully off; a typical
// floor is ~half the demand). It returns the power actually shed — less
// than requested only when every server is already at its floor.
func (p *Pool) Shed(amount units.Power, floor units.Fraction) units.Power {
	if amount <= 0 {
		return 0
	}
	f := float64(floor.Clamp01())
	order := make([]int, len(p.servers))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return p.servers[order[a]].Priority > p.servers[order[b]].Priority
	})
	var shed units.Power
	for _, idx := range order {
		if shed >= amount {
			break
		}
		s := &p.servers[idx]
		minDraw := units.Power(float64(s.Demand) * f)
		reducible := s.Draw() - minDraw
		if reducible <= 0 {
			continue
		}
		cut := reducible
		if remaining := amount - shed; cut > remaining {
			cut = remaining
		}
		s.Cap = s.Draw() - cut
		s.HasCap = true
		shed += cut
	}
	return shed
}

// Release removes every cap.
func (p *Pool) Release() {
	for i := range p.servers {
		p.servers[i].Cap = 0
		p.servers[i].HasCap = false
	}
}
