package server

import (
	"math"
	"testing"
	"testing/quick"

	"coordcharge/internal/rack"
	"coordcharge/internal/units"
)

func mixedPool(t *testing.T) *Pool {
	t.Helper()
	p, err := NewPool([]Server{
		{Name: "db-0", Priority: rack.P1, Demand: 400},
		{Name: "db-1", Priority: rack.P1, Demand: 400},
		{Name: "cache-0", Priority: rack.P2, Demand: 250},
		{Name: "web-0", Priority: rack.P3, Demand: 200},
		{Name: "web-1", Priority: rack.P3, Demand: 200},
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewPoolValidation(t *testing.T) {
	cases := map[string][]Server{
		"empty name": {{Name: "", Priority: rack.P1, Demand: 100}},
		"duplicate":  {{Name: "a", Priority: rack.P1, Demand: 1}, {Name: "a", Priority: rack.P2, Demand: 1}},
		"negative":   {{Name: "a", Priority: rack.P1, Demand: -5}},
		"bad prio":   {{Name: "a", Priority: rack.Priority(9), Demand: 5}},
	}
	for name, servers := range cases {
		if _, err := NewPool(servers); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestPoolAggregates(t *testing.T) {
	p := mixedPool(t)
	if got := p.Demand(); got != 1450 {
		t.Errorf("demand = %v", got)
	}
	if got := p.Draw(); got != 1450 {
		t.Errorf("uncapped draw = %v", got)
	}
	if p.CappedCount() != 0 || p.Len() != 5 {
		t.Errorf("capped=%d len=%d", p.CappedCount(), p.Len())
	}
}

func TestShedLowestPriorityFirst(t *testing.T) {
	p := mixedPool(t)
	// 150 W shed with a 50% floor: both web servers can give 100 W each.
	shed := p.Shed(150, 0.5)
	if shed != 150 {
		t.Fatalf("shed = %v, want 150", shed)
	}
	for _, s := range p.Servers() {
		switch s.Priority {
		case rack.P1, rack.P2:
			if s.Capped() {
				t.Errorf("%s capped before the web tier was exhausted", s.Name)
			}
		}
	}
	if got := p.Draw(); got != 1300 {
		t.Errorf("draw after shed = %v", got)
	}
	if p.CappedCount() != 2 {
		t.Errorf("capped servers = %d, want 2 (web-0 fully cut, web-1 partially)", p.CappedCount())
	}
}

func TestShedEscalatesThroughPriorities(t *testing.T) {
	p := mixedPool(t)
	// Floor 50%: total reducible = 725 W. Request 500: web (200) then cache
	// (125) then db (175 of 400).
	shed := p.Shed(500, 0.5)
	if shed != 500 {
		t.Fatalf("shed = %v", shed)
	}
	var dbCapped int
	for _, s := range p.Servers() {
		if s.Priority == rack.P1 && s.Capped() {
			dbCapped++
		}
	}
	if dbCapped == 0 {
		t.Error("P1 servers untouched despite exhausted lower tiers")
	}
}

func TestShedFloorBindsTotal(t *testing.T) {
	p := mixedPool(t)
	shed := p.Shed(10000, 0.5)
	if math.Abs(float64(shed)-725) > 1e-9 {
		t.Errorf("max shed = %v, want 725 (the 50%% floor)", shed)
	}
	if got := p.Draw(); math.Abs(float64(got)-725) > 1e-9 {
		t.Errorf("draw at floor = %v", got)
	}
	if p.CappedCount() != 5 {
		t.Errorf("capped = %d, want all 5", p.CappedCount())
	}
	p.Release()
	if p.CappedCount() != 0 || p.Draw() != 1450 {
		t.Errorf("release failed: %d capped, draw %v", p.CappedCount(), p.Draw())
	}
}

func TestShedZeroAndRepeat(t *testing.T) {
	p := mixedPool(t)
	if got := p.Shed(0, 0.5); got != 0 {
		t.Errorf("zero shed = %v", got)
	}
	// Repeated sheds accumulate.
	p.Shed(100, 0.5)
	p.Shed(100, 0.5)
	if got := p.Draw(); got != 1250 {
		t.Errorf("draw after two sheds = %v", got)
	}
}

func TestUniformPool(t *testing.T) {
	p := Uniform("web", 30, rack.P3, 200)
	if p.Len() != 30 || p.Demand() != 6000 {
		t.Errorf("uniform pool: len=%d demand=%v", p.Len(), p.Demand())
	}
	// Shedding 1 kW at a 50% floor caps ten 200 W servers fully to their
	// 100 W floors.
	shed := p.Shed(1000, 0.5)
	if shed != 1000 {
		t.Errorf("shed = %v", shed)
	}
	if got := p.CappedCount(); got != 10 {
		t.Errorf("capped = %d, want 10", got)
	}
}

func TestShedConservationProperty(t *testing.T) {
	prop := func(amountRaw uint16, floorRaw uint8) bool {
		p := Uniform("s", 20, rack.P2, 250)
		amount := units.Power(amountRaw)
		floor := units.Fraction(floorRaw%101) / 100
		before := p.Draw()
		shed := p.Shed(amount, floor)
		after := p.Draw()
		// Accounting is exact, shed never exceeds the request, and no
		// server dips below its floor.
		if math.Abs(float64(before-after-shed)) > 1e-6 {
			return false
		}
		if shed > amount {
			return false
		}
		for _, s := range p.Servers() {
			if s.Draw() < units.Power(float64(s.Demand)*float64(floor))-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
