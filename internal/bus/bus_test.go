package bus

import (
	"testing"
	"time"

	"coordcharge/internal/sim"
)

func TestSendDeliversWithLatency(t *testing.T) {
	e := sim.NewEngine()
	b := New(e, ConstantLatency(100*time.Millisecond))
	var gotAt time.Duration
	var gotPayload any
	b.Register("dst", func(now time.Duration, msg *Message) {
		gotAt = now
		gotPayload = msg.Payload
	})
	b.Send("src", "dst", "ping", 42)
	e.Run(time.Second)
	if gotAt != 100*time.Millisecond {
		t.Errorf("delivered at %v, want 100ms", gotAt)
	}
	if gotPayload != 42 {
		t.Errorf("payload = %v", gotPayload)
	}
	if b.Delivered() != 1 || b.Dropped() != 0 {
		t.Errorf("counters = %d/%d", b.Delivered(), b.Dropped())
	}
}

func TestRequestReplyRoundTrip(t *testing.T) {
	e := sim.NewEngine()
	b := New(e, ConstantLatency(50*time.Millisecond))
	b.Register("server", func(now time.Duration, msg *Message) {
		b.Reply(now, msg, msg.Payload.(int)*2)
	})
	var replyAt time.Duration
	var result any
	b.Request("client", "server", "double", 21, func(now time.Duration, payload any) {
		replyAt = now
		result = payload
	})
	e.Run(time.Second)
	if result != 42 {
		t.Errorf("result = %v", result)
	}
	if replyAt != 100*time.Millisecond { // 50ms out + 50ms back
		t.Errorf("reply at %v, want 100ms", replyAt)
	}
}

func TestUnknownEndpointDropped(t *testing.T) {
	e := sim.NewEngine()
	b := New(e, nil)
	b.Send("a", "ghost", "x", nil)
	e.Run(time.Second)
	if b.Dropped() != 1 || b.Delivered() != 0 {
		t.Errorf("counters = %d/%d", b.Delivered(), b.Dropped())
	}
}

func TestDropFilter(t *testing.T) {
	e := sim.NewEngine()
	b := New(e, nil)
	n := 0
	b.Register("dst", func(time.Duration, *Message) { n++ })
	b.DropFilter = func(m *Message) bool { return m.Kind == "lossy" }
	b.Send("a", "dst", "lossy", nil)
	b.Send("a", "dst", "ok", nil)
	e.Run(time.Second)
	if n != 1 || b.Dropped() != 1 {
		t.Errorf("delivered=%d dropped=%d", n, b.Dropped())
	}
}

func TestReplyToOneWayPanics(t *testing.T) {
	e := sim.NewEngine()
	b := New(e, nil)
	b.Register("dst", func(now time.Duration, msg *Message) {
		defer func() {
			if recover() == nil {
				t.Error("reply to one-way message did not panic")
			}
		}()
		b.Reply(now, msg, nil)
	})
	b.Send("a", "dst", "oneway", nil)
	e.Run(time.Second)
}

func TestRegisterTwicePanics(t *testing.T) {
	e := sim.NewEngine()
	b := New(e, nil)
	b.Register("x", func(time.Duration, *Message) {})
	defer func() {
		if recover() == nil {
			t.Error("double registration did not panic")
		}
	}()
	b.Register("x", func(time.Duration, *Message) {})
}

func TestNilArgsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("nil engine did not panic")
		}
	}()
	New(nil, nil)
}

func TestPerPathLatency(t *testing.T) {
	e := sim.NewEngine()
	b := New(e, func(from, to string) time.Duration {
		if to == "far" {
			return time.Second
		}
		return time.Millisecond
	})
	var nearAt, farAt time.Duration
	b.Register("near", func(now time.Duration, _ *Message) { nearAt = now })
	b.Register("far", func(now time.Duration, _ *Message) { farAt = now })
	b.Send("src", "near", "x", nil)
	b.Send("src", "far", "x", nil)
	e.Run(2 * time.Second)
	if nearAt != time.Millisecond || farAt != time.Second {
		t.Errorf("near=%v far=%v", nearAt, farAt)
	}
}

func TestFIFOBetweenSameEndpoints(t *testing.T) {
	e := sim.NewEngine()
	b := New(e, ConstantLatency(10*time.Millisecond))
	var order []int
	b.Register("dst", func(_ time.Duration, msg *Message) {
		order = append(order, msg.Payload.(int))
	})
	for i := 0; i < 5; i++ {
		b.Send("src", "dst", "seq", i)
	}
	e.Run(time.Second)
	for i, v := range order {
		if v != i {
			t.Fatalf("out-of-order delivery: %v", order)
		}
	}
}

func TestPerturbDropDelayDuplicate(t *testing.T) {
	e := sim.NewEngine()
	b := New(e, ConstantLatency(10*time.Millisecond))
	var arrivals []time.Duration
	b.Register("dst", func(now time.Duration, msg *Message) {
		arrivals = append(arrivals, now)
	})
	b.Perturb = func(_ time.Duration, msg *Message) (bool, time.Duration, int) {
		switch msg.Kind {
		case "lost":
			return true, 0, 0
		case "slow":
			return false, 90 * time.Millisecond, 0
		case "dup":
			return false, 0, 1
		}
		return false, 0, 0
	}
	b.Send("src", "dst", "lost", nil)
	b.Send("src", "dst", "slow", nil)
	b.Send("src", "dst", "dup", nil)
	e.Run(time.Second)
	if b.Dropped() != 1 {
		t.Errorf("dropped = %d, want 1", b.Dropped())
	}
	// slow arrives at 100 ms; dup arrives twice at 10 ms.
	want := []time.Duration{10 * time.Millisecond, 10 * time.Millisecond, 100 * time.Millisecond}
	if len(arrivals) != len(want) {
		t.Fatalf("arrivals = %v, want %v", arrivals, want)
	}
	for i := range want {
		if arrivals[i] != want[i] {
			t.Errorf("arrival %d at %v, want %v", i, arrivals[i], want[i])
		}
	}
}

func TestPerturbAppliesToReplies(t *testing.T) {
	e := sim.NewEngine()
	b := New(e, ConstantLatency(time.Millisecond))
	b.Register("svc", func(now time.Duration, msg *Message) {
		b.Reply(now, msg, "pong")
	})
	dropReplies := true
	var kinds []string
	b.Perturb = func(_ time.Duration, msg *Message) (bool, time.Duration, int) {
		kinds = append(kinds, msg.Kind)
		return dropReplies && msg.Kind == "reply:ping", 0, 0
	}
	replies := 0
	b.Request("cli", "svc", "ping", nil, func(time.Duration, any) { replies++ })
	e.Run(time.Second)
	if replies != 0 {
		t.Fatal("dropped reply was delivered")
	}
	if b.Dropped() != 1 {
		t.Errorf("dropped = %d, want 1", b.Dropped())
	}
	// The reply path presents the swapped route to the perturbation hook.
	if len(kinds) != 2 || kinds[0] != "ping" || kinds[1] != "reply:ping" {
		t.Errorf("perturbed kinds = %v", kinds)
	}
	dropReplies = false
	b.Request("cli", "svc", "ping", nil, func(time.Duration, any) { replies++ })
	e.Run(2 * time.Second)
	if replies != 1 {
		t.Error("healed reply not delivered")
	}
}
