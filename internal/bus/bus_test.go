package bus

import (
	"testing"
	"time"

	"coordcharge/internal/sim"
)

func TestSendDeliversWithLatency(t *testing.T) {
	e := sim.NewEngine()
	b := New(e, ConstantLatency(100*time.Millisecond))
	var gotAt time.Duration
	var gotPayload any
	b.Register("dst", func(now time.Duration, msg *Message) {
		gotAt = now
		gotPayload = msg.Payload
	})
	b.Send("src", "dst", "ping", 42)
	e.Run(time.Second)
	if gotAt != 100*time.Millisecond {
		t.Errorf("delivered at %v, want 100ms", gotAt)
	}
	if gotPayload != 42 {
		t.Errorf("payload = %v", gotPayload)
	}
	if b.Delivered() != 1 || b.Dropped() != 0 {
		t.Errorf("counters = %d/%d", b.Delivered(), b.Dropped())
	}
}

func TestRequestReplyRoundTrip(t *testing.T) {
	e := sim.NewEngine()
	b := New(e, ConstantLatency(50*time.Millisecond))
	b.Register("server", func(now time.Duration, msg *Message) {
		b.Reply(now, msg, msg.Payload.(int)*2)
	})
	var replyAt time.Duration
	var result any
	b.Request("client", "server", "double", 21, func(now time.Duration, payload any) {
		replyAt = now
		result = payload
	})
	e.Run(time.Second)
	if result != 42 {
		t.Errorf("result = %v", result)
	}
	if replyAt != 100*time.Millisecond { // 50ms out + 50ms back
		t.Errorf("reply at %v, want 100ms", replyAt)
	}
}

func TestUnknownEndpointDropped(t *testing.T) {
	e := sim.NewEngine()
	b := New(e, nil)
	b.Send("a", "ghost", "x", nil)
	e.Run(time.Second)
	if b.Dropped() != 1 || b.Delivered() != 0 {
		t.Errorf("counters = %d/%d", b.Delivered(), b.Dropped())
	}
}

func TestDropFilter(t *testing.T) {
	e := sim.NewEngine()
	b := New(e, nil)
	n := 0
	b.Register("dst", func(time.Duration, *Message) { n++ })
	b.DropFilter = func(m *Message) bool { return m.Kind == "lossy" }
	b.Send("a", "dst", "lossy", nil)
	b.Send("a", "dst", "ok", nil)
	e.Run(time.Second)
	if n != 1 || b.Dropped() != 1 {
		t.Errorf("delivered=%d dropped=%d", n, b.Dropped())
	}
}

func TestReplyToOneWayPanics(t *testing.T) {
	e := sim.NewEngine()
	b := New(e, nil)
	b.Register("dst", func(now time.Duration, msg *Message) {
		defer func() {
			if recover() == nil {
				t.Error("reply to one-way message did not panic")
			}
		}()
		b.Reply(now, msg, nil)
	})
	b.Send("a", "dst", "oneway", nil)
	e.Run(time.Second)
}

func TestRegisterTwicePanics(t *testing.T) {
	e := sim.NewEngine()
	b := New(e, nil)
	b.Register("x", func(time.Duration, *Message) {})
	defer func() {
		if recover() == nil {
			t.Error("double registration did not panic")
		}
	}()
	b.Register("x", func(time.Duration, *Message) {})
}

func TestNilArgsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("nil engine did not panic")
		}
	}()
	New(nil, nil)
}

func TestPerPathLatency(t *testing.T) {
	e := sim.NewEngine()
	b := New(e, func(from, to string) time.Duration {
		if to == "far" {
			return time.Second
		}
		return time.Millisecond
	})
	var nearAt, farAt time.Duration
	b.Register("near", func(now time.Duration, _ *Message) { nearAt = now })
	b.Register("far", func(now time.Duration, _ *Message) { farAt = now })
	b.Send("src", "near", "x", nil)
	b.Send("src", "far", "x", nil)
	e.Run(2 * time.Second)
	if nearAt != time.Millisecond || farAt != time.Second {
		t.Errorf("near=%v far=%v", nearAt, farAt)
	}
}

func TestFIFOBetweenSameEndpoints(t *testing.T) {
	e := sim.NewEngine()
	b := New(e, ConstantLatency(10*time.Millisecond))
	var order []int
	b.Register("dst", func(_ time.Duration, msg *Message) {
		order = append(order, msg.Payload.(int))
	})
	for i := 0; i < 5; i++ {
		b.Send("src", "dst", "seq", i)
	}
	e.Run(time.Second)
	for i, v := range order {
		if v != i {
			t.Fatalf("out-of-order delivery: %v", order)
		}
	}
}
