// Package bus provides deterministic in-simulation message passing between
// control-plane components: the network that connects Dynamo agents on TOR
// switches to the distributed controllers (paper §IV-B). Messages are
// delivered through the discrete-event engine with a configurable latency
// model, so ordering is reproducible run-to-run and network delay becomes a
// first-class experimental variable (the ~20 s override settling of Fig 11
// is mostly command execution, but the read/override round trips themselves
// ride this bus).
package bus

import (
	"fmt"
	"time"

	"coordcharge/internal/sim"
)

// Message is one datagram between endpoints.
type Message struct {
	From, To string
	// Kind discriminates the protocol operation ("read", "override", ...).
	Kind string
	// Payload carries the operation's argument or result.
	Payload any
	// reply carries the response path for request/response exchanges.
	reply func(now time.Duration, payload any)
}

// Handler processes a delivered message.
type Handler func(now time.Duration, msg *Message)

// LatencyModel returns the one-way delivery delay between two endpoints.
type LatencyModel func(from, to string) time.Duration

// ConstantLatency returns a LatencyModel with a fixed one-way delay.
func ConstantLatency(d time.Duration) LatencyModel {
	return func(_, _ string) time.Duration { return d }
}

// Bus is the message fabric. Construct with New.
type Bus struct {
	engine    *sim.Engine
	latency   LatencyModel
	endpoints map[string]Handler
	delivered uint64
	dropped   uint64
	// DropFilter, when set, discards matching messages (fault injection).
	DropFilter func(msg *Message) bool
	// Perturb, when set, lets a fault injector act on every message —
	// requests, one-way sends, and replies (replies are presented with
	// Kind "reply:<kind>" and swapped From/To). Returning drop discards
	// the message, extra adds delivery delay beyond the latency model,
	// and dup delivers that many additional copies.
	Perturb func(now time.Duration, msg *Message) (drop bool, extra time.Duration, dup int)
}

// New builds a bus over the engine. A nil latency model means instant
// delivery (still engine-ordered).
func New(engine *sim.Engine, latency LatencyModel) *Bus {
	if engine == nil {
		panic(fmt.Errorf("bus: nil engine"))
	}
	if latency == nil {
		latency = ConstantLatency(0)
	}
	return &Bus{engine: engine, latency: latency, endpoints: make(map[string]Handler)}
}

// Register attaches a handler to an endpoint name. Registering a name twice
// panics: endpoint identity is a wiring invariant.
func (b *Bus) Register(name string, h Handler) {
	if _, dup := b.endpoints[name]; dup {
		panic(fmt.Errorf("bus: endpoint %q registered twice", name))
	}
	if h == nil {
		panic(fmt.Errorf("bus: nil handler for %q", name))
	}
	b.endpoints[name] = h
}

// Delivered and Dropped report traffic counters.
func (b *Bus) Delivered() uint64 { return b.delivered }

// Dropped counts messages discarded by the DropFilter or sent to unknown
// endpoints.
func (b *Bus) Dropped() uint64 { return b.dropped }

// Send dispatches a one-way message; delivery happens after the latency
// model's delay. Messages to unregistered endpoints are counted as dropped
// (a controller may poll an agent that has been decommissioned).
func (b *Bus) Send(from, to, kind string, payload any) {
	b.send(&Message{From: from, To: to, Kind: kind, Payload: payload})
}

// Request dispatches a message and routes the response back through the bus
// (paying latency both ways). The responder completes the exchange by
// calling Reply on the delivered message.
func (b *Bus) Request(from, to, kind string, payload any, onReply func(now time.Duration, payload any)) {
	b.send(&Message{
		From: from, To: to, Kind: kind, Payload: payload,
		reply: func(_ time.Duration, result any) {
			// The response travels back with its own delay and is subject
			// to the same fault perturbation as a forward message.
			b.dispatch(&Message{From: to, To: from, Kind: "reply:" + kind, Payload: result},
				func(now time.Duration) { onReply(now, result) })
		},
	})
}

// Reply completes a request/response exchange. Replying to a one-way
// message is a protocol bug and panics.
func (b *Bus) Reply(now time.Duration, msg *Message, payload any) {
	if msg.reply == nil {
		panic(fmt.Errorf("bus: reply to one-way %s message from %s", msg.Kind, msg.From))
	}
	msg.reply(now, payload)
}

func (b *Bus) send(msg *Message) {
	b.dispatch(msg, func(now time.Duration) {
		h, ok := b.endpoints[msg.To]
		if !ok {
			b.dropped++
			return
		}
		b.delivered++
		h(now, msg)
	})
}

// dispatch applies the drop filter and fault perturbation to msg, then
// schedules deliver after the latency model's delay (plus any injected
// extra), once per injected duplicate.
func (b *Bus) dispatch(msg *Message, deliver func(now time.Duration)) {
	if b.DropFilter != nil && b.DropFilter(msg) {
		b.dropped++
		return
	}
	var extra time.Duration
	var dup int
	if b.Perturb != nil {
		var drop bool
		drop, extra, dup = b.Perturb(b.engine.Now(), msg)
		if drop {
			b.dropped++
			return
		}
	}
	d := b.latency(msg.From, msg.To) + extra
	for i := 0; i <= dup; i++ {
		b.engine.ScheduleAfter(d, "bus:"+msg.Kind+":"+msg.To, deliver)
	}
}
