package grid

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"

	"coordcharge/internal/rng"
	"coordcharge/internal/units"
)

// Point is one step of a piecewise-constant grid signal: the signal holds
// value V from offset T (relative to run start) until the next point.
type Point struct {
	// T is the offset from run start at which V takes effect.
	T time.Duration
	// V is the signal value (watts for caps, $/MWh for price, gCO2/kWh for
	// carbon intensity).
	V float64
}

// Series is a validated piecewise-constant time series. The zero value is
// not usable; build one with NewSeries or a parser. A nil *Series means "no
// signal" everywhere it is accepted.
//
// Lookup is by binary search, so a Series carries no cursor state of its
// own — that is what keeps checkpoint/resume trivial: the effective value at
// a virtual time is a pure function of the spec, never of lookup history.
type Series struct {
	pts []Point
}

// NewSeries validates and builds a series. The rules are strict in the
// svc-ingestion style: at least one point, first offset >= 0, offsets
// strictly increasing, every value finite. Anything else is rejected rather
// than repaired — a grid feed with NaN holes or unsorted rows is a broken
// feed, and repairing it silently would make runs depend on repair policy.
func NewSeries(pts []Point) (*Series, error) {
	if len(pts) == 0 {
		return nil, fmt.Errorf("grid: empty series")
	}
	if pts[0].T < 0 {
		return nil, fmt.Errorf("grid: series starts at negative offset %v", pts[0].T)
	}
	for i, p := range pts {
		if math.IsNaN(p.V) || math.IsInf(p.V, 0) {
			return nil, fmt.Errorf("grid: non-finite value %v at point %d (t=%v)", p.V, i, p.T)
		}
		if i > 0 && p.T <= pts[i-1].T {
			return nil, fmt.Errorf("grid: series offsets not strictly increasing at point %d (%v after %v)",
				i, p.T, pts[i-1].T)
		}
	}
	cp := make([]Point, len(pts))
	copy(cp, pts)
	return &Series{pts: cp}, nil
}

// At returns the signal value at offset t. Before the first point the first
// value holds (the signal is assumed already in effect at run start).
func (s *Series) At(t time.Duration) float64 {
	if s == nil || len(s.pts) == 0 {
		return 0
	}
	// First point whose offset is > t; the value in effect is the one before.
	i := sort.Search(len(s.pts), func(i int) bool { return s.pts[i].T > t })
	if i == 0 {
		return s.pts[0].V
	}
	return s.pts[i-1].V
}

// Len returns the number of steps in the series.
func (s *Series) Len() int {
	if s == nil {
		return 0
	}
	return len(s.pts)
}

// Points returns a copy of the series steps.
func (s *Series) Points() []Point {
	if s == nil {
		return nil
	}
	cp := make([]Point, len(s.pts))
	copy(cp, s.pts)
	return cp
}

// Max returns the largest value in the series (0 for a nil series).
func (s *Series) Max() float64 {
	if s == nil || len(s.pts) == 0 {
		return 0
	}
	m := s.pts[0].V
	for _, p := range s.pts[1:] {
		if p.V > m {
			m = p.V
		}
	}
	return m
}

// Min returns the smallest value in the series (0 for a nil series).
func (s *Series) Min() float64 {
	if s == nil || len(s.pts) == 0 {
		return 0
	}
	m := s.pts[0].V
	for _, p := range s.pts[1:] {
		if p.V < m {
			m = p.V
		}
	}
	return m
}

// hash folds the series into a fingerprint hash. Bit-exact: values hash by
// their IEEE-754 bits, so two specs fingerprint equal iff lookups agree
// everywhere.
func (s *Series) hash(h io.Writer) {
	if s == nil {
		fmt.Fprint(h, "nil")
		return
	}
	for _, p := range s.pts {
		fmt.Fprintf(h, "%d:%016x;", int64(p.T), math.Float64bits(p.V))
	}
}

// Fingerprint returns a 64-bit FNV fingerprint of the series.
func (s *Series) Fingerprint() uint64 {
	h := fnv.New64a()
	s.hash(h)
	return h.Sum64()
}

// seriesHeader is the optional first line a CSV series file may carry.
const seriesHeader = "t_s,value"

// ParseSeriesCSV parses a two-column CSV series: `t_seconds,value` per
// line, offsets in seconds. Blank lines and `#` comments are skipped; an
// optional `t_s,value` header line is accepted. Validation is NewSeries'
// strict contract — NaN/Inf values, negative offsets, and unsorted rows are
// all rejected with the offending line number.
func ParseSeriesCSV(r io.Reader) (*Series, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var pts []Point
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		if line == 1 && strings.EqualFold(strings.ReplaceAll(text, " ", ""), seriesHeader) {
			continue
		}
		parts := strings.Split(text, ",")
		if len(parts) != 2 {
			return nil, fmt.Errorf("grid: line %d: want 2 fields `t_s,value`, got %d", line, len(parts))
		}
		secs, err := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
		if err != nil {
			return nil, fmt.Errorf("grid: line %d: bad offset %q: %v", line, parts[0], err)
		}
		if math.IsNaN(secs) || math.IsInf(secs, 0) {
			return nil, fmt.Errorf("grid: line %d: non-finite offset %q", line, parts[0])
		}
		if secs < 0 {
			return nil, fmt.Errorf("grid: line %d: negative offset %q", line, parts[0])
		}
		if secs > maxSeriesOffsetSeconds {
			return nil, fmt.Errorf("grid: line %d: offset %q beyond the %v bound", line, parts[0], maxSeriesOffset)
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
		if err != nil {
			return nil, fmt.Errorf("grid: line %d: bad value %q: %v", line, parts[1], err)
		}
		pts = append(pts, Point{T: time.Duration(secs * float64(time.Second)), V: v})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("grid: read series: %v", err)
	}
	return NewSeries(pts)
}

// maxSeriesOffset bounds series offsets to a year of virtual time: far
// enough for any endurance run, small enough that seconds-to-Duration
// conversion cannot overflow int64 nanoseconds.
const maxSeriesOffset = 365 * 24 * time.Hour

const maxSeriesOffsetSeconds = float64(maxSeriesOffset / time.Second)

// jsonPoint is the wire form of one series step.
type jsonPoint struct {
	TS float64 `json:"t_s"`
	V  float64 `json:"v"`
}

// ParseSeriesJSON parses a JSON series: `[{"t_s": 0, "v": 120.5}, ...]`,
// offsets in seconds. Unknown fields are rejected (strict decoder), and the
// points pass the same NewSeries validation as the CSV path.
func ParseSeriesJSON(data []byte) (*Series, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var raw []jsonPoint
	if err := dec.Decode(&raw); err != nil {
		return nil, fmt.Errorf("grid: decode series JSON: %v", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("grid: trailing data after series JSON")
	}
	pts := make([]Point, 0, len(raw))
	for i, p := range raw {
		if math.IsNaN(p.TS) || math.IsInf(p.TS, 0) {
			return nil, fmt.Errorf("grid: point %d: non-finite offset", i)
		}
		if p.TS < 0 {
			return nil, fmt.Errorf("grid: point %d: negative offset %v", i, p.TS)
		}
		if p.TS > maxSeriesOffsetSeconds {
			return nil, fmt.Errorf("grid: point %d: offset beyond the %v bound", i, maxSeriesOffset)
		}
		pts = append(pts, Point{T: time.Duration(p.TS * float64(time.Second)), V: p.V})
	}
	return NewSeries(pts)
}

// StepSeries builds a series from (offset, value) pairs laid out flat:
// StepSeries(0, 100, 3600*time.Second, 80) holds 100 on [0, 1h) and 80
// after. It panics on invalid input — it exists for tests and synthetic
// schedules whose shape is static.
func StepSeries(pairs ...interface{}) *Series {
	if len(pairs)%2 != 0 {
		panic("grid: StepSeries wants (time.Duration, float64) pairs")
	}
	pts := make([]Point, 0, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		t, ok := pairs[i].(time.Duration)
		if !ok {
			panic(fmt.Sprintf("grid: StepSeries pair %d: offset is %T, want time.Duration", i/2, pairs[i]))
		}
		var v float64
		switch x := pairs[i+1].(type) {
		case float64:
			v = x
		case int:
			v = float64(x)
		case units.Power:
			v = float64(x)
		default:
			panic(fmt.Sprintf("grid: StepSeries pair %d: value is %T", i/2, pairs[i+1]))
		}
		pts = append(pts, Point{T: t, V: v})
	}
	s, err := NewSeries(pts)
	if err != nil {
		panic(err)
	}
	return s
}

// ShrinkCap builds the connect-and-manage cap schedule used by the
// cap-shrink figures: the cap holds base, drops to base*(1-frac) at `at`,
// and (when restore > at) recovers to base at `restore`. restore <= 0 means
// the shrink is permanent.
func ShrinkCap(base units.Power, frac float64, at, restore time.Duration) (*Series, error) {
	if base <= 0 {
		return nil, fmt.Errorf("grid: ShrinkCap base %v not positive", base)
	}
	if frac <= 0 || frac >= 1 {
		return nil, fmt.Errorf("grid: ShrinkCap fraction %v outside (0,1)", frac)
	}
	if at <= 0 {
		return nil, fmt.Errorf("grid: ShrinkCap time %v not positive", at)
	}
	pts := []Point{{T: 0, V: float64(base)}, {T: at, V: float64(base) * (1 - frac)}}
	if restore > 0 {
		if restore <= at {
			return nil, fmt.Errorf("grid: ShrinkCap restore %v not after shrink %v", restore, at)
		}
		pts = append(pts, Point{T: restore, V: float64(base)})
	}
	return NewSeries(pts)
}

// SynthPrice generates a seed-reproducible day-ahead-style energy price
// series: a diurnal double hump (morning and evening peaks) around base
// $/MWh with amplitude swing, plus bounded seeded noise, stepped at `step`
// over `horizon`. Deterministic: the same (seed, step, horizon, base,
// swing) always yields the identical series.
func SynthPrice(seed int64, step, horizon time.Duration, base, swing float64) (*Series, error) {
	return synthDiurnal(seed, step, horizon, base, swing, 0)
}

// SynthCarbon generates a seed-reproducible grid carbon-intensity series in
// gCO2/kWh: an inverted solar bowl (dirty overnight, clean midday) around
// base with amplitude swing, plus bounded seeded noise. Values clamp at 0 —
// negative carbon intensity is meaningless even where negative prices are
// not.
func SynthCarbon(seed int64, step, horizon time.Duration, base, swing float64) (*Series, error) {
	return synthDiurnal(seed, step, horizon, base, -swing, 0)
}

// synthDiurnal is the shared diurnal generator. A positive swing peaks in
// the morning/evening (price shape); a negative swing peaks overnight
// (carbon shape). floor clamps generated values from below.
func synthDiurnal(seed int64, step, horizon time.Duration, base, swing, floor float64) (*Series, error) {
	if step <= 0 {
		return nil, fmt.Errorf("grid: synth step %v not positive", step)
	}
	if horizon <= 0 {
		return nil, fmt.Errorf("grid: synth horizon %v not positive", horizon)
	}
	if horizon > maxSeriesOffset {
		return nil, fmt.Errorf("grid: synth horizon %v beyond the %v bound", horizon, maxSeriesOffset)
	}
	if math.IsNaN(base) || math.IsInf(base, 0) || math.IsNaN(swing) || math.IsInf(swing, 0) {
		return nil, fmt.Errorf("grid: non-finite synth base/swing")
	}
	if horizon/step > 1<<20 {
		return nil, fmt.Errorf("grid: synth series too long (%d steps)", horizon/step)
	}
	src := rng.New(seed)
	var pts []Point
	for t := time.Duration(0); t <= horizon; t += step {
		day := math.Mod(t.Hours(), 24) / 24 // [0,1) position in the day
		// Double hump at ~08:00 and ~19:00 when swing > 0; its negation is
		// the overnight-dirty carbon shape.
		shape := math.Sin(2*math.Pi*day-math.Pi/2) + 0.5*math.Sin(4*math.Pi*day)
		v := base + swing*0.5*shape + swing*0.15*src.Uniform(-1, 1)
		if v < floor {
			v = floor
		}
		pts = append(pts, Point{T: t, V: v})
	}
	return NewSeries(pts)
}
