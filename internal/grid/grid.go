// Package grid is the grid signal plane: it models the electric utility
// side of the meter that the paper abstracts away as a fixed breaker limit.
// The related work treats the datacenter as a grid actor — OpenG2G
// coordinates datacenter power behavior against grid runtime signals, and
// the connect-and-manage interconnection studies show BBU fleets riding out
// time-varying utility caps — and this package is the substrate for those
// scenarios: piecewise time series for the interconnection cap, energy
// price, and carbon intensity; a grid event stream (frequency-droop events,
// demand-response windows, cap shrink/restore) that drives the existing
// storm admission queue and breaker guard exactly like outage events do;
// and a Policy that the planning tick consults so that
//
//   - the effective feed limit is min(breaker limit, interconnection cap),
//     enforced within the tick over the server-management plane,
//   - charge admission defers while price or carbon sits above a threshold
//     (the postpone_charge idiom), bounded by an SLA safety valve,
//   - eligible BBUs deliberately discharge to shave grid peaks during
//     demand-response windows while their recharge deadlines stay intact.
//
// Everything is deterministic and seed-reproducible: series lookups are
// pure functions of virtual time, events fire in sorted order behind an
// integer cursor, and the synthetic generators draw from internal/rng. The
// policy's mutable state exports/restores through PolicyState so
// checkpointed runs resume bit-exactly mid-series.
package grid

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"

	"coordcharge/internal/rack"
	"coordcharge/internal/units"
)

// EventKind enumerates grid events.
type EventKind int

const (
	// FreqDroop is a frequency-droop event: the grid frequency sagged and
	// the site must drop controllable load now. The policy pauses every
	// active charge into the storm queue (the same mass-pause a site outage
	// causes) and defers new admission for the event's duration.
	FreqDroop EventKind = iota
	// DemandResponse is a demand-response window: for the duration, the
	// policy discharges eligible BBUs to hold grid draw at the shave
	// target (Spec.Policy.ShaveTarget, or Frac of the effective cap).
	DemandResponse
	// CapShrink is a connect-and-manage curtailment: for the duration, the
	// effective interconnection cap is multiplied by (1-Frac). Composes
	// with the Cap series by taking the minimum.
	CapShrink
)

// String names the event kind for flight events and flags.
func (k EventKind) String() string {
	switch k {
	case FreqDroop:
		return "droop"
	case DemandResponse:
		return "dr"
	case CapShrink:
		return "capshrink"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one scheduled grid event.
type Event struct {
	// Kind selects the event behavior.
	Kind EventKind
	// At is the event start, an offset from run start.
	At time.Duration
	// Dur is how long the event lasts.
	Dur time.Duration
	// Frac parameterises the event: for CapShrink the fraction of the cap
	// removed (0,1); for DemandResponse an optional shave depth — when > 0
	// the window's target is (1-Frac) x the effective cap, otherwise the
	// policy's configured ShaveTarget. Unused for FreqDroop.
	Frac float64
}

// window reports whether the event is active at offset t.
func (e Event) window(t time.Duration) bool {
	return t >= e.At && t < e.At+e.Dur
}

// PolicyConfig parameterises the grid policy. The zero value enables
// nothing: each behavior switches on with its own field.
type PolicyConfig struct {
	// DeferPrice defers charge admission while the energy price ($/MWh) is
	// at or above this threshold. Zero disables price deferral.
	DeferPrice float64
	// DeferCarbon defers charge admission while the grid carbon intensity
	// (gCO2/kWh) is at or above this threshold. Zero disables.
	DeferCarbon float64
	// MaxDefer is the SLA safety valve: the longest continuous stretch the
	// policy may hold admission deferred before it lifts the deferral until
	// the signal next clears. Zero selects the default (30 min); negative
	// disables the valve (defer as long as the signal says).
	MaxDefer time.Duration
	// ShaveTarget is the grid-draw level to shave to during demand-response
	// windows and price-triggered shaves, in watts. Zero means DR windows
	// derive their target from the event's Frac (and price-triggered
	// shaving stays off).
	ShaveTarget units.Power
	// ShavePrice starts a shave whenever the energy price is at or above
	// this threshold, independent of DR windows. Requires ShaveTarget.
	// Zero disables.
	ShavePrice float64
	// MaxShaveDOD is the battery depth a rack may spend carrying its IT
	// load for peak shaving before the policy rotates it out. Zero selects
	// the default (0.25); the recharge SLA machinery sizes the rest.
	MaxShaveDOD units.Fraction
	// ShavePriority is the most critical class allowed to shave: only
	// racks of this class or less critical discharge for grid peaks.
	// Zero selects the default (P2) — P1 racks never volunteer.
	ShavePriority rack.Priority
}

// withDefaults resolves zero fields to their defaults.
func (c PolicyConfig) withDefaults() PolicyConfig {
	if c.MaxDefer == 0 {
		c.MaxDefer = 30 * time.Minute
	}
	if c.MaxShaveDOD == 0 {
		c.MaxShaveDOD = 0.25
	}
	if c.ShavePriority == 0 {
		c.ShavePriority = rack.P2
	}
	return c
}

// Spec is a complete grid scenario: the signal series, the event schedule,
// and the policy thresholds. A nil *Spec disables the grid plane.
type Spec struct {
	// Cap is the interconnection cap in watts (nil = breaker limit only).
	Cap *Series
	// Price is the energy price in $/MWh (nil = no price signal).
	Price *Series
	// Carbon is the grid carbon intensity in gCO2/kWh (nil = none).
	Carbon *Series
	// Events is the grid event schedule. Validate sorts it.
	Events []Event
	// Policy holds the policy thresholds.
	Policy PolicyConfig
}

// Validate checks the spec and normalises it: events are sorted by start
// time (ties by kind, duration, fraction) so the policy can fire them from
// an integer cursor — the "grid cursor" that checkpoints must restore.
func (s *Spec) Validate() error {
	if s == nil {
		return nil
	}
	if s.Cap != nil && s.Cap.Min() <= 0 {
		return fmt.Errorf("grid: cap series has non-positive value %v", s.Cap.Min())
	}
	if s.Carbon != nil && s.Carbon.Min() < 0 {
		return fmt.Errorf("grid: carbon series has negative value %v", s.Carbon.Min())
	}
	// Price may go negative: real day-ahead markets clear below zero.
	for i, e := range s.Events {
		switch e.Kind {
		case FreqDroop, DemandResponse, CapShrink:
		default:
			return fmt.Errorf("grid: event %d: unknown kind %d", i, int(e.Kind))
		}
		if e.At < 0 {
			return fmt.Errorf("grid: event %d (%v): negative start %v", i, e.Kind, e.At)
		}
		if e.Dur <= 0 {
			return fmt.Errorf("grid: event %d (%v): non-positive duration %v", i, e.Kind, e.Dur)
		}
		switch e.Kind {
		case CapShrink:
			if e.Frac <= 0 || e.Frac >= 1 {
				return fmt.Errorf("grid: event %d (capshrink): fraction %v outside (0,1)", i, e.Frac)
			}
		case DemandResponse:
			if e.Frac < 0 || e.Frac >= 1 {
				return fmt.Errorf("grid: event %d (dr): fraction %v outside [0,1)", i, e.Frac)
			}
			if e.Frac == 0 && s.Policy.ShaveTarget <= 0 {
				return fmt.Errorf("grid: event %d (dr): no shave depth — set the event fraction or Policy.ShaveTarget", i)
			}
		case FreqDroop:
			if e.Frac != 0 {
				return fmt.Errorf("grid: event %d (droop): fraction %v must be zero", i, e.Frac)
			}
		}
	}
	sort.SliceStable(s.Events, func(i, j int) bool {
		a, b := s.Events[i], s.Events[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Dur != b.Dur {
			return a.Dur < b.Dur
		}
		return a.Frac < b.Frac
	})
	c := s.Policy
	if c.DeferPrice < 0 || c.DeferCarbon < 0 || c.ShavePrice < 0 {
		return fmt.Errorf("grid: negative policy threshold")
	}
	if (c.DeferPrice > 0 || c.ShavePrice > 0) && s.Price == nil {
		return fmt.Errorf("grid: price threshold set but no price series")
	}
	if c.DeferCarbon > 0 && s.Carbon == nil {
		return fmt.Errorf("grid: carbon threshold set but no carbon series")
	}
	if c.ShavePrice > 0 && c.ShaveTarget <= 0 {
		return fmt.Errorf("grid: ShavePrice set but no ShaveTarget")
	}
	if c.ShaveTarget < 0 {
		return fmt.Errorf("grid: negative ShaveTarget %v", c.ShaveTarget)
	}
	if c.MaxShaveDOD < 0 || c.MaxShaveDOD > 1 {
		return fmt.Errorf("grid: MaxShaveDOD %v outside [0,1]", c.MaxShaveDOD)
	}
	if c.ShavePriority != 0 && !c.ShavePriority.Valid() {
		return fmt.Errorf("grid: invalid ShavePriority %d", int(c.ShavePriority))
	}
	return nil
}

// Fingerprint returns a 64-bit fingerprint of the whole spec, folded into
// the scenario checkpoint fingerprint so a resume against a different grid
// schedule is rejected rather than silently diverging.
func (s *Spec) Fingerprint() uint64 {
	h := fnv.New64a()
	if s == nil {
		return h.Sum64()
	}
	s.Cap.hash(h)
	s.Price.hash(h)
	s.Carbon.hash(h)
	for _, e := range s.Events {
		fmt.Fprintf(h, "|e%d:%d:%d:%x", int(e.Kind), int64(e.At), int64(e.Dur), e.Frac)
	}
	c := s.Policy
	fmt.Fprintf(h, "|p%x:%x:%d:%x:%x:%x:%d",
		c.DeferPrice, c.DeferCarbon, int64(c.MaxDefer),
		float64(c.ShaveTarget), c.ShavePrice, float64(c.MaxShaveDOD), int(c.ShavePriority))
	return h.Sum64()
}

// ParseSpec parses the -grid flag value: semicolon-separated key=value
// elements. "off"/"" yields a nil spec; "on" yields an empty enabled spec
// (useful when the series arrive from files).
//
//	cap=205kW@0,143.5kW@10m      interconnection-cap steps (power@offset)
//	price=40@0,95@6h             $/MWh steps (value@offset)
//	carbon=450@0,120@8h          gCO2/kWh steps
//	synthprice=seed:step:horizon:base:swing   seeded synthetic price series
//	synthcarbon=seed:step:horizon:base:swing  seeded synthetic carbon series
//	droop=15m+40s                frequency-droop event at+duration (repeatable ,)
//	dr=2h+30m(0.15)              demand-response window, optional depth
//	capshrink=1h+2h(0.3)         cap curtailment, required fraction
//	deferprice=80  defercarbon=400  maxdefer=20m
//	shave=180kW  shaveprice=90  shavedod=0.3  shaveprio=2
//
// The returned spec is already validated.
func ParseSpec(s string) (*Spec, error) {
	return ParseSpecWith(s, nil, nil, nil)
}

// ParseSpecWith parses like ParseSpec but attaches externally loaded series
// (CSV/JSON files the caller already read) before validation, so a flag
// string whose thresholds reference a file-loaded signal — say deferprice
// with the price curve arriving from a CSV — parses cleanly. A series given
// both inline and as a file is a conflict, not an override. Loaded series
// with an "off" spec string is a contradiction; with an empty string they
// enable the plane on their own.
func ParseSpecWith(s string, cap, price, carbon *Series) (*Spec, error) {
	s = strings.TrimSpace(s)
	loaded := cap != nil || price != nil || carbon != nil
	finish := func(spec *Spec) (*Spec, error) {
		if cap != nil {
			if spec.Cap != nil {
				return nil, fmt.Errorf("grid: cap series given both inline and as a file")
			}
			spec.Cap = cap
		}
		if price != nil {
			if spec.Price != nil {
				return nil, fmt.Errorf("grid: price series given both inline and as a file")
			}
			spec.Price = price
		}
		if carbon != nil {
			if spec.Carbon != nil {
				return nil, fmt.Errorf("grid: carbon series given both inline and as a file")
			}
			spec.Carbon = carbon
		}
		if err := spec.Validate(); err != nil {
			return nil, err
		}
		return spec, nil
	}
	switch strings.ToLower(s) {
	case "off", "none":
		if loaded {
			return nil, fmt.Errorf("grid: series files given but the grid plane is %q", s)
		}
		return nil, nil
	case "":
		if !loaded {
			return nil, nil
		}
		return finish(&Spec{})
	case "on", "default":
		return finish(&Spec{})
	}
	spec := &Spec{}
	for _, part := range strings.Split(s, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("grid: element %q is not key=value", part)
		}
		key, val := strings.ToLower(strings.TrimSpace(kv[0])), strings.TrimSpace(kv[1])
		var err error
		switch key {
		case "cap":
			spec.Cap, err = parseInlineSeries(val, true)
		case "price":
			spec.Price, err = parseInlineSeries(val, false)
		case "carbon":
			spec.Carbon, err = parseInlineSeries(val, false)
		case "synthprice":
			spec.Price, err = parseSynth(val, SynthPrice)
		case "synthcarbon":
			spec.Carbon, err = parseSynth(val, SynthCarbon)
		case "droop":
			err = parseEvents(val, FreqDroop, &spec.Events)
		case "dr":
			err = parseEvents(val, DemandResponse, &spec.Events)
		case "capshrink":
			err = parseEvents(val, CapShrink, &spec.Events)
		case "deferprice":
			spec.Policy.DeferPrice, err = parseFinite(val)
		case "defercarbon":
			spec.Policy.DeferCarbon, err = parseFinite(val)
		case "maxdefer":
			spec.Policy.MaxDefer, err = time.ParseDuration(val)
		case "shave":
			spec.Policy.ShaveTarget, err = units.ParsePower(val)
		case "shaveprice":
			spec.Policy.ShavePrice, err = parseFinite(val)
		case "shavedod":
			var f units.Fraction
			f, err = units.ParseFraction(val)
			spec.Policy.MaxShaveDOD = f
		case "shaveprio":
			var n int
			n, err = strconv.Atoi(val)
			spec.Policy.ShavePriority = rack.Priority(n)
		default:
			return nil, fmt.Errorf("grid: unknown key %q", key)
		}
		if err != nil {
			return nil, fmt.Errorf("grid: %s=%s: %v", key, val, err)
		}
	}
	return finish(spec)
}

// parseFinite parses a float and rejects NaN/Inf (strconv accepts both).
func parseFinite(s string) (float64, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("non-finite value %q", s)
	}
	return v, nil
}

// parseInlineSeries parses "value@offset,value@offset,..." — power-suffixed
// values when power is true, plain floats otherwise. A single bare value is
// a flat series from t=0.
func parseInlineSeries(s string, power bool) (*Series, error) {
	var pts []Point
	for _, step := range strings.Split(s, ",") {
		step = strings.TrimSpace(step)
		if step == "" {
			continue
		}
		vs, ts := step, "0s"
		if i := strings.IndexByte(step, '@'); i >= 0 {
			vs, ts = step[:i], step[i+1:]
		}
		var v float64
		if power {
			p, err := units.ParsePower(vs)
			if err != nil {
				return nil, err
			}
			v = float64(p)
		} else {
			f, err := parseFinite(vs)
			if err != nil {
				return nil, err
			}
			v = f
		}
		at, err := time.ParseDuration(ts)
		if err != nil {
			return nil, fmt.Errorf("bad offset %q: %v", ts, err)
		}
		pts = append(pts, Point{T: at, V: v})
	}
	return NewSeries(pts)
}

// parseSynth parses "seed:step:horizon:base:swing" for a synthetic series.
func parseSynth(s string, gen func(int64, time.Duration, time.Duration, float64, float64) (*Series, error)) (*Series, error) {
	parts := strings.Split(s, ":")
	if len(parts) != 5 {
		return nil, fmt.Errorf("want seed:step:horizon:base:swing, got %d fields", len(parts))
	}
	seed, err := strconv.ParseInt(strings.TrimSpace(parts[0]), 10, 64)
	if err != nil {
		return nil, fmt.Errorf("bad seed: %v", err)
	}
	step, err := time.ParseDuration(strings.TrimSpace(parts[1]))
	if err != nil {
		return nil, fmt.Errorf("bad step: %v", err)
	}
	horizon, err := time.ParseDuration(strings.TrimSpace(parts[2]))
	if err != nil {
		return nil, fmt.Errorf("bad horizon: %v", err)
	}
	base, err := parseFinite(strings.TrimSpace(parts[3]))
	if err != nil {
		return nil, fmt.Errorf("bad base: %v", err)
	}
	swing, err := parseFinite(strings.TrimSpace(parts[4]))
	if err != nil {
		return nil, fmt.Errorf("bad swing: %v", err)
	}
	return gen(seed, step, horizon, base, swing)
}

// parseEvents parses "at+dur,at+dur(frac),..." into events of one kind.
func parseEvents(s string, kind EventKind, out *[]Event) error {
	for _, item := range strings.Split(s, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		frac := 0.0
		if i := strings.IndexByte(item, '('); i >= 0 {
			if !strings.HasSuffix(item, ")") {
				return fmt.Errorf("unclosed fraction in %q", item)
			}
			f, err := parseFinite(item[i+1 : len(item)-1])
			if err != nil {
				return fmt.Errorf("bad fraction in %q: %v", item, err)
			}
			frac, item = f, item[:i]
		}
		plus := strings.IndexByte(item, '+')
		if plus < 0 {
			return fmt.Errorf("event %q wants at+duration", item)
		}
		at, err := time.ParseDuration(strings.TrimSpace(item[:plus]))
		if err != nil {
			return fmt.Errorf("bad event start in %q: %v", item, err)
		}
		dur, err := time.ParseDuration(strings.TrimSpace(item[plus+1:]))
		if err != nil {
			return fmt.Errorf("bad event duration in %q: %v", item, err)
		}
		*out = append(*out, Event{Kind: kind, At: at, Dur: dur, Frac: frac})
	}
	return nil
}
