package grid

import (
	"testing"
	"time"

	"coordcharge/internal/battery"
	"coordcharge/internal/charger"
	"coordcharge/internal/core"
	"coordcharge/internal/power"
	"coordcharge/internal/rack"
	"coordcharge/internal/storm"
	"coordcharge/internal/units"
)

// idleRack builds an input-up rack with a full battery and the given IT
// demand — an eligible peak-shave volunteer.
func idleRack(name string, p rack.Priority, demand units.Power) *rack.Rack {
	r := rack.New(name, p, charger.Variable{}, battery.Fig5Surface())
	r.SetDemand(demand)
	return r
}

// drainedChargingRack builds a rack mid-recharge after a short discharge.
func drainedChargingRack(t *testing.T, name string, p rack.Priority, demand units.Power) *rack.Rack {
	t.Helper()
	r := idleRack(name, p, demand)
	r.LoseInput(0)
	r.Step(2*time.Minute, 2*time.Minute)
	r.RestoreInput(2 * time.Minute)
	if !r.Charging() {
		t.Fatalf("setup: rack %s not charging", name)
	}
	r.OverrideCurrent(5 * units.Ampere)
	return r
}

// rig binds a policy over the racks under one MSB node with a storm queue.
func rig(t *testing.T, spec *Spec, limit units.Power, racks ...*rack.Rack) (*Policy, *power.Node, *storm.Queue) {
	t.Helper()
	n := power.NewNode("msb", power.LevelMSB, limit)
	for _, r := range racks {
		n.AttachLoad(r)
	}
	q := storm.NewQueue(storm.Config{})
	p, err := NewPolicy(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Bind(n, racks, q, core.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	return p, n, q
}

func TestBindRequiresQueue(t *testing.T) {
	p, err := NewPolicy(&Spec{})
	if err != nil {
		t.Fatal(err)
	}
	n := power.NewNode("msb", power.LevelMSB, 100*units.Kilowatt)
	if err := p.Bind(n, nil, nil, core.DefaultConfig()); err == nil {
		t.Fatal("Bind accepted a nil storm queue")
	}
}

func TestEffectiveLimitIsMinOfBreakerAndCap(t *testing.T) {
	cap := StepSeries(time.Duration(0), 300*units.Kilowatt, time.Hour, 80*units.Kilowatt)
	p, _, _ := rig(t, &Spec{Cap: cap}, 100*units.Kilowatt)
	if got := p.EffectiveLimit(0); got != 100*units.Kilowatt {
		t.Fatalf("EffectiveLimit(0) = %v, want the breaker limit", got)
	}
	if got := p.EffectiveLimit(2 * time.Hour); got != 80*units.Kilowatt {
		t.Fatalf("EffectiveLimit(2h) = %v, want the shrunken cap", got)
	}
}

func TestCapShrinkEventMultipliesCap(t *testing.T) {
	spec := &Spec{
		Cap:    StepSeries(time.Duration(0), 200*units.Kilowatt),
		Events: []Event{{Kind: CapShrink, At: time.Hour, Dur: time.Hour, Frac: 0.3}},
	}
	p, _, _ := rig(t, spec, 500*units.Kilowatt)
	if got := p.CapAt(30 * time.Minute); got != 200*units.Kilowatt {
		t.Fatalf("CapAt before event = %v", got)
	}
	if got := p.CapAt(90 * time.Minute); got != 140*units.Kilowatt {
		t.Fatalf("CapAt during event = %v, want 140kW", got)
	}
	if got := p.CapAt(3 * time.Hour); got != 200*units.Kilowatt {
		t.Fatalf("CapAt after event = %v", got)
	}
	// Without a cap series, the shrink applies to the breaker limit.
	spec2 := &Spec{Events: []Event{{Kind: CapShrink, At: 0, Dur: time.Hour, Frac: 0.5}}}
	p2, _, _ := rig(t, spec2, 500*units.Kilowatt)
	if got := p2.CapAt(time.Minute); got != 250*units.Kilowatt {
		t.Fatalf("CapAt with breaker base = %v, want 250kW", got)
	}
}

func TestDeferStateMachineWithSLAValve(t *testing.T) {
	price := StepSeries(time.Duration(0), 40.0, time.Hour, 120.0, 3*time.Hour, 40.0)
	spec := &Spec{
		Cap:    nil,
		Price:  price,
		Policy: PolicyConfig{DeferPrice: 100, MaxDefer: 30 * time.Minute},
	}
	p, _, _ := rig(t, spec, 100*units.Kilowatt)
	p.Tick(0)
	if p.DeferCharging(0) {
		t.Fatal("deferring at cheap price")
	}
	p.Tick(time.Hour)
	if !p.DeferCharging(time.Hour) {
		t.Fatal("not deferring above the price threshold")
	}
	// 30 minutes in, the SLA valve lifts the deferral.
	p.Tick(time.Hour + 30*time.Minute)
	if p.DeferCharging(time.Hour + 30*time.Minute) {
		t.Fatal("MaxDefer valve did not lift the deferral")
	}
	if p.Metrics().DeferLifts != 1 {
		t.Fatalf("DeferLifts = %d, want 1", p.Metrics().DeferLifts)
	}
	// Still expensive: the lift holds (no flap back into deferral).
	p.Tick(2 * time.Hour)
	if p.DeferCharging(2 * time.Hour) {
		t.Fatal("deferral re-latched while lifted")
	}
	// Signal clears, then crosses again: a fresh deferral may start.
	p.Tick(3 * time.Hour)
	spec2 := price.At(3 * time.Hour)
	if spec2 != 40 {
		t.Fatalf("price at 3h = %v", spec2)
	}
	p.Tick(4 * time.Hour) // still cheap
	if p.DeferCharging(4 * time.Hour) {
		t.Fatal("deferring at cheap price after clear")
	}
}

func TestDroopPausesChargingIntoQueue(t *testing.T) {
	r1 := drainedChargingRack(t, "p1", rack.P1, 6300*units.Watt)
	r2 := drainedChargingRack(t, "p3", rack.P3, 6300*units.Watt)
	spec := &Spec{Events: []Event{{Kind: FreqDroop, At: 10 * time.Minute, Dur: time.Minute}}}
	p, _, q := rig(t, spec, 100*units.Kilowatt, r1, r2)

	p.Tick(5 * time.Minute)
	if !r1.Charging() || !r2.Charging() {
		t.Fatal("charges paused before the droop event")
	}
	p.Tick(10 * time.Minute)
	if r1.Charging() || r2.Charging() {
		t.Fatal("droop left charges running")
	}
	if q.Len() != 2 {
		t.Fatalf("queue holds %d, want both paused charges", q.Len())
	}
	if !p.DeferCharging(10*time.Minute + 30*time.Second) {
		t.Fatal("not deferring during the droop window")
	}
	if p.DeferCharging(12 * time.Minute) {
		t.Fatal("still deferring after the droop window")
	}
	if p.Metrics().DroopEvents != 1 {
		t.Fatalf("DroopEvents = %d", p.Metrics().DroopEvents)
	}
}

func TestEnforceCapShedsWithinTick(t *testing.T) {
	racks := []*rack.Rack{
		drainedChargingRack(t, "p1", rack.P1, 6300*units.Watt),
		drainedChargingRack(t, "p2", rack.P2, 6300*units.Watt),
		drainedChargingRack(t, "p3", rack.P3, 6300*units.Watt),
	}
	cap := StepSeries(time.Duration(0), 100*units.Kilowatt, time.Hour, units.Power(0))
	// Shrink the cap to just under the current draw at t=1h.
	n := power.NewNode("msb", power.LevelMSB, 100*units.Kilowatt)
	for _, r := range racks {
		n.AttachLoad(r)
	}
	shrunk := n.Power() - 1*units.Watt
	pts := cap.Points()
	pts[1].V = float64(shrunk)
	capSeries, err := NewSeries(pts)
	if err != nil {
		t.Fatal(err)
	}
	q := storm.NewQueue(storm.Config{})
	p, err := NewPolicy(&Spec{Cap: capSeries})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Bind(n, racks, q, core.DefaultConfig()); err != nil {
		t.Fatal(err)
	}

	p.Tick(30 * time.Minute)
	if m := p.Metrics(); m.CapDemotions != 0 && m.CapPauses != 0 {
		t.Fatalf("enforcement before the shrink: %+v", m)
	}
	p.Tick(time.Hour)
	if got := n.Power(); got > shrunk {
		t.Fatalf("draw %v still over the shrunken cap %v after Tick", got, shrunk)
	}
	m := p.Metrics()
	if m.CapDemotions == 0 {
		t.Fatal("no demotions recorded")
	}
	// The P1 rack sheds last: a sliver of overdraw must be covered by
	// demoting the P3 rack alone.
	if racks[0].Pack().Setpoint() <= core.DefaultConfig().SafeCurrent() {
		t.Fatal("P1 demoted before P3 for a 1W excess")
	}
	p.Account(time.Hour, 3*time.Second)
	if p.Metrics().ViolationTicks != 0 {
		t.Fatal("violation recorded after in-tick enforcement")
	}
}

func TestShaveHoldsTargetAndRestores(t *testing.T) {
	racks := []*rack.Rack{
		idleRack("p1a", rack.P1, 6300*units.Watt),
		idleRack("p2a", rack.P2, 6300*units.Watt),
		idleRack("p3a", rack.P3, 6300*units.Watt),
		idleRack("p3b", rack.P3, 6300*units.Watt),
	}
	spec := &Spec{
		Events: []Event{{Kind: DemandResponse, At: 10 * time.Minute, Dur: 20 * time.Minute}},
		Policy: PolicyConfig{ShaveTarget: 15 * units.Kilowatt},
	}
	p, n, _ := rig(t, spec, 100*units.Kilowatt, racks...)

	p.Tick(5 * time.Minute)
	if p.Shaving() != 0 {
		t.Fatal("shaving before the DR window")
	}
	p.Tick(10 * time.Minute)
	if got := n.Power(); got > 15*units.Kilowatt {
		t.Fatalf("draw %v above the shave target", got)
	}
	if p.Shaving() != 2 {
		t.Fatalf("shaving %d racks, want 2", p.Shaving())
	}
	// Least critical volunteers first: both P3 racks discharge, the P1
	// and P2 racks stay on grid power.
	if racks[2].InputUp() || racks[3].InputUp() {
		t.Fatal("P3 racks not shaving")
	}
	if !racks[0].InputUp() || !racks[1].InputUp() {
		t.Fatal("P1/P2 rack volunteered to shave")
	}
	if got := p.ShavedPower(); got != 2*6300*units.Watt {
		t.Fatalf("ShavedPower = %v, want 12.6kW", got)
	}
	if !p.Busy(15 * time.Minute) {
		t.Fatal("not Busy mid-window")
	}
	// Let the shaving batteries actually discharge for a while.
	for _, r := range racks {
		r.Step(15*time.Minute, 5*time.Minute)
	}

	// Window closes: everything restores and recharges begin.
	p.Tick(30 * time.Minute)
	if p.Shaving() != 0 {
		t.Fatalf("still shaving %d after the window", p.Shaving())
	}
	for _, r := range racks {
		if !r.InputUp() {
			t.Fatalf("rack %s not restored", r.Name())
		}
	}
	if !racks[2].Charging() && !racks[3].Charging() {
		t.Fatal("shaved racks not recharging after restore")
	}
	m := p.Metrics()
	if m.ShaveStarts != 2 || m.ShaveStops != 2 || m.DRWindows != 1 {
		t.Fatalf("metrics: %+v", m)
	}
	if p.Busy(31 * time.Minute) {
		t.Fatal("Busy after all events and shaves done")
	}
}

func TestShaveDODBudgetRotatesRacks(t *testing.T) {
	racks := []*rack.Rack{
		idleRack("p3a", rack.P3, 6300*units.Watt),
		idleRack("p3b", rack.P3, 6300*units.Watt),
	}
	spec := &Spec{
		Events: []Event{{Kind: DemandResponse, At: 0, Dur: 4 * time.Hour}},
		Policy: PolicyConfig{ShaveTarget: 10 * units.Kilowatt, MaxShaveDOD: 0.05},
	}
	p, _, _ := rig(t, spec, 100*units.Kilowatt, racks...)
	step := 3 * time.Second
	rotated := false
	for now := time.Duration(0); now < time.Hour; now += step {
		p.Tick(now)
		for _, r := range racks {
			r.Step(now+step, step)
		}
		if p.Metrics().ShaveRotations > 0 {
			rotated = true
			break
		}
	}
	if !rotated {
		t.Fatal("no rack hit the MaxShaveDOD budget within an hour")
	}
}

func TestPriceTriggeredShave(t *testing.T) {
	racks := []*rack.Rack{
		idleRack("p3a", rack.P3, 6300*units.Watt),
		idleRack("p3b", rack.P3, 6300*units.Watt),
	}
	price := StepSeries(time.Duration(0), 40.0, time.Hour, 150.0, 2*time.Hour, 40.0)
	spec := &Spec{
		Price:  price,
		Policy: PolicyConfig{ShavePrice: 120, ShaveTarget: 8 * units.Kilowatt},
	}
	p, n, _ := rig(t, spec, 100*units.Kilowatt, racks...)
	p.Tick(30 * time.Minute)
	if p.Shaving() != 0 {
		t.Fatal("shaving at cheap price")
	}
	p.Tick(time.Hour)
	if p.Shaving() == 0 {
		t.Fatal("no shave at peak price")
	}
	if n.Power() > 8*units.Kilowatt {
		t.Fatalf("draw %v above target", n.Power())
	}
	p.Tick(2 * time.Hour)
	if p.Shaving() != 0 {
		t.Fatal("still shaving after price fell")
	}
}

func TestAccountScoresViolationsAndIntegrals(t *testing.T) {
	// IT load alone exceeds the cap and the policy has no charges to shed:
	// Account must score the violation (the guard's IT-capping territory).
	r := idleRack("p1", rack.P1, 6300*units.Watt)
	capSeries := StepSeries(time.Duration(0), 5*units.Kilowatt)
	price := StepSeries(time.Duration(0), 100.0)
	carbon := StepSeries(time.Duration(0), 500.0)
	spec := &Spec{Cap: capSeries, Price: price, Carbon: carbon}
	p, _, _ := rig(t, spec, 100*units.Kilowatt, r)

	p.Tick(0)
	p.Account(0, time.Hour)
	m := p.Metrics()
	if m.ViolationTicks != 1 {
		t.Fatalf("ViolationTicks = %d, want 1", m.ViolationTicks)
	}
	if m.MaxOverCap < 1*units.Kilowatt {
		t.Fatalf("MaxOverCap = %v", m.MaxOverCap)
	}
	// 6.3 kW for one hour at $100/MWh = $0.63; at 500 g/kWh = 3.15 kg.
	if m.EnergyCost < 0.62 || m.EnergyCost > 0.64 {
		t.Fatalf("EnergyCost = %v, want ~0.63", m.EnergyCost)
	}
	if m.CarbonKg < 3.1 || m.CarbonKg > 3.2 {
		t.Fatalf("CarbonKg = %v, want ~3.15", m.CarbonKg)
	}
	if m.GridEnergy.KWh() < 6.2 || m.GridEnergy.KWh() > 6.4 {
		t.Fatalf("GridEnergy = %v kWh", m.GridEnergy.KWh())
	}
}

func TestExportRestoreRoundTrip(t *testing.T) {
	build := func() (*Policy, []*rack.Rack, *storm.Queue, *power.Node) {
		racks := []*rack.Rack{
			idleRack("p3a", rack.P3, 6300*units.Watt),
			idleRack("p3b", rack.P3, 6300*units.Watt),
		}
		price := StepSeries(time.Duration(0), 150.0)
		spec := &Spec{
			Price: price,
			Events: []Event{
				{Kind: DemandResponse, At: 0, Dur: time.Hour},
				{Kind: FreqDroop, At: 2 * time.Hour, Dur: time.Minute},
			},
			Policy: PolicyConfig{ShaveTarget: 8 * units.Kilowatt, DeferPrice: 120},
		}
		n := power.NewNode("msb", power.LevelMSB, 100*units.Kilowatt)
		for _, r := range racks {
			n.AttachLoad(r)
		}
		q := storm.NewQueue(storm.Config{})
		p, err := NewPolicy(spec)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Bind(n, racks, q, core.DefaultConfig()); err != nil {
			t.Fatal(err)
		}
		return p, racks, q, n
	}
	a, racksA, _, _ := build()
	a.Tick(0)
	a.Account(0, 3*time.Second)
	st := a.ExportState()
	if len(st.Shaving) == 0 || !st.Deferring {
		t.Fatalf("expected active shave + deferral in exported state: %+v", st)
	}

	b, racksB, _, _ := build()
	// Mirror the rack-side state (the scenario restores racks separately).
	for i, r := range racksA {
		if !r.InputUp() {
			racksB[i].LoseInput(0)
		}
	}
	if err := b.RestoreState(st); err != nil {
		t.Fatal(err)
	}
	st2 := b.ExportState()
	if len(st2.Shaving) != len(st.Shaving) || st2.EventCursor != st.EventCursor ||
		st2.Deferring != st.Deferring || st2.Metrics != st.Metrics {
		t.Fatalf("round trip diverged:\n a=%+v\n b=%+v", st, st2)
	}

	// Restore against an unknown rack name must fail loudly.
	c, _, _, _ := build()
	bad := st
	bad.Shaving = []string{"ghost"}
	if err := c.RestoreState(bad); err == nil {
		t.Fatal("restored a shaving set naming an unknown rack")
	}
	bad = st
	bad.EventCursor = 99
	if err := c.RestoreState(bad); err == nil {
		t.Fatal("restored an out-of-range event cursor")
	}
}
