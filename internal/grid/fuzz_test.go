package grid

import (
	"math"
	"strings"
	"testing"
	"time"
)

// FuzzGridSeries hardens the grid series parsers against arbitrary feeds:
// neither parser may panic, and any accepted series must satisfy the
// NewSeries contract — non-empty, offsets non-negative and strictly
// increasing, every value finite. NaN/Inf values, negative offsets, and
// unsorted rows must all be rejected, on both the CSV and JSON paths.
func FuzzGridSeries(f *testing.F) {
	// Valid seeds.
	f.Add("0,40.5\n3600,95\n7200,-12\n")
	f.Add("t_s,value\n0,205000\n600,143500\n")
	f.Add("# comment\n\n0,1\n")
	f.Add(`[{"t_s":0,"v":205000},{"t_s":600,"v":143500}]`)
	f.Add(`[{"t_s":0,"v":-12.5}]`)
	// Malformed seeds.
	f.Add("0,nan\n")
	f.Add("0,+Inf\n")
	f.Add("-5,10\n")
	f.Add("100,1\n50,2\n")
	f.Add("10,1\n10,2\n")
	f.Add("0,1,2\n")
	f.Add("1e300,1\n")
	f.Add("0;1\n")
	f.Add(`[{"t_s":-1,"v":1}]`)
	f.Add(`[{"t_s":0,"v":1,"extra":2}]`)
	f.Add(`[{"t_s":1e999,"v":1}]`)
	f.Add(`[{"t_s":0,"v":1}] trailing`)
	f.Add(`not json`)

	check := func(t *testing.T, in string, s *Series) {
		if s == nil || s.Len() == 0 {
			t.Fatalf("accepted %q but returned an empty series", in)
		}
		prev := time.Duration(-1)
		for _, p := range s.Points() {
			if p.T < 0 {
				t.Fatalf("accepted %q with negative offset %v", in, p.T)
			}
			if p.T <= prev {
				t.Fatalf("accepted %q with non-increasing offsets", in)
			}
			prev = p.T
			if math.IsNaN(p.V) || math.IsInf(p.V, 0) {
				t.Fatalf("accepted %q with non-finite value %v", in, p.V)
			}
		}
		// Lookup must be total and finite over the whole span.
		for _, at := range []time.Duration{0, prev / 2, prev, prev + time.Hour} {
			v := s.At(at)
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("At(%v) on accepted %q is non-finite", at, in)
			}
		}
	}

	f.Fuzz(func(t *testing.T, in string) {
		if s, err := ParseSeriesCSV(strings.NewReader(in)); err == nil {
			check(t, in, s)
		}
		if s, err := ParseSeriesJSON([]byte(in)); err == nil {
			check(t, in, s)
		}
	})
}
