package grid

import (
	"testing"
	"time"

	"coordcharge/internal/rack"
	"coordcharge/internal/units"
)

func TestParseSpecFull(t *testing.T) {
	spec, err := ParseSpec("cap=205kW@0,143.5kW@10m;price=40@0,95@6h;carbon=450;" +
		"droop=15m+40s;dr=2h+30m(0.15);capshrink=1h+2h(0.3);" +
		"deferprice=80;defercarbon=400;maxdefer=20m;shave=180kW;shaveprice=90;shavedod=30%;shaveprio=2")
	if err != nil {
		t.Fatal(err)
	}
	if got := spec.Cap.At(10 * time.Minute); got != 143500 {
		t.Fatalf("cap at 10m = %v, want 143500", got)
	}
	if got := spec.Price.At(7 * time.Hour); got != 95 {
		t.Fatalf("price at 7h = %v", got)
	}
	if len(spec.Events) != 3 {
		t.Fatalf("events = %d, want 3", len(spec.Events))
	}
	// Validate sorts by start: droop(15m), capshrink(1h), dr(2h).
	if spec.Events[0].Kind != FreqDroop || spec.Events[1].Kind != CapShrink || spec.Events[2].Kind != DemandResponse {
		t.Fatalf("event order wrong: %+v", spec.Events)
	}
	if spec.Events[2].Frac != 0.15 {
		t.Fatalf("dr frac = %v", spec.Events[2].Frac)
	}
	p := spec.Policy
	if p.DeferPrice != 80 || p.DeferCarbon != 400 || p.MaxDefer != 20*time.Minute {
		t.Fatalf("defer config wrong: %+v", p)
	}
	if p.ShaveTarget != 180*units.Kilowatt || p.ShavePrice != 90 || p.MaxShaveDOD != 0.3 || p.ShavePriority != rack.P2 {
		t.Fatalf("shave config wrong: %+v", p)
	}
}

func TestParseSpecOffAndOn(t *testing.T) {
	for _, s := range []string{"", "off", "none"} {
		spec, err := ParseSpec(s)
		if err != nil || spec != nil {
			t.Fatalf("ParseSpec(%q) = %v, %v; want nil, nil", s, spec, err)
		}
	}
	spec, err := ParseSpec("on")
	if err != nil || spec == nil {
		t.Fatalf("ParseSpec(on) = %v, %v", spec, err)
	}
}

func TestParseSpecSynth(t *testing.T) {
	spec, err := ParseSpec("synthprice=7:15m:24h:60:40;synthcarbon=7:30m:24h:400:300")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Price.Len() == 0 || spec.Carbon.Len() == 0 {
		t.Fatal("synthetic series empty")
	}
	again, err := ParseSpec("synthprice=7:15m:24h:60:40;synthcarbon=7:30m:24h:400:300")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Fingerprint() != again.Fingerprint() {
		t.Fatal("synthetic spec not reproducible")
	}
}

func TestParseSpecWithLoadedSeries(t *testing.T) {
	price, err := NewSeries([]Point{{T: 0, V: 40}, {T: 6 * time.Hour, V: 95}})
	if err != nil {
		t.Fatal(err)
	}
	// A threshold referencing a file-loaded series must parse: the series
	// attaches before validation.
	spec, err := ParseSpecWith("deferprice=80", nil, price, nil)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Price != price || spec.Policy.DeferPrice != 80 {
		t.Fatalf("loaded price series not attached: %+v", spec)
	}
	// Loaded series alone enable the plane, even with an empty spec string.
	spec, err = ParseSpecWith("", price, nil, nil)
	if err != nil || spec == nil || spec.Cap != price {
		t.Fatalf("ParseSpecWith(\"\", cap) = %v, %v; want enabled spec", spec, err)
	}
	// "on" composes with loaded series too.
	spec, err = ParseSpecWith("on", nil, nil, price)
	if err != nil || spec.Carbon != price {
		t.Fatalf("ParseSpecWith(on, carbon) = %v, %v", spec, err)
	}
	// Conflicts and contradictions are errors, not silent overrides.
	if _, err := ParseSpecWith("price=40", nil, price, nil); err == nil {
		t.Fatal("accepted price series given both inline and as a file")
	}
	if _, err := ParseSpecWith("off", nil, price, nil); err == nil {
		t.Fatal("accepted series files with the grid plane off")
	}
	// Loaded series still pass through validation: a non-positive cap is
	// rejected no matter where it came from.
	bad, err := NewSeries([]Point{{T: 0, V: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseSpecWith("on", bad, nil, nil); err == nil {
		t.Fatal("accepted non-positive file-loaded cap series")
	}
}

func TestParseSpecRejects(t *testing.T) {
	cases := map[string]string{
		"unknown-key":       "frob=1",
		"not-kv":            "cap",
		"nan-price":         "price=NaN",
		"bad-shrink-frac":   "capshrink=1h+1h(1.5)",
		"shrink-no-frac":    "capshrink=1h+1h",
		"droop-with-frac":   "droop=1h+1m(0.5)",
		"dr-no-depth":       "dr=1h+30m", // no frac and no shave target
		"defer-no-price":    "deferprice=80",
		"shaveprice-no-tgt": "price=40;shaveprice=90",
		"neg-cap":           "cap=-5kW",
		"bad-prio":          "shaveprio=9",
		"neg-dur":           "droop=1h+-1m",
		"bad-synth":         "synthprice=1:2:3",
	}
	for name, in := range cases {
		if _, err := ParseSpec(in); err == nil {
			t.Errorf("%s: accepted %q", name, in)
		}
	}
}

func TestSpecFingerprintSensitivity(t *testing.T) {
	base := func() *Spec {
		s, err := ParseSpec("cap=205kW;price=40;deferprice=80")
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b := base(), base()
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("identical specs fingerprint differently")
	}
	b.Policy.DeferPrice = 81
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("policy change not reflected in fingerprint")
	}
	c := base()
	c.Events = append(c.Events, Event{Kind: FreqDroop, At: time.Hour, Dur: time.Minute})
	if a.Fingerprint() == c.Fingerprint() {
		t.Fatal("event change not reflected in fingerprint")
	}
	var nilSpec *Spec
	if nilSpec.Fingerprint() == a.Fingerprint() {
		t.Fatal("nil spec collides with a real spec")
	}
}

func TestValidateRejectsOverlapRules(t *testing.T) {
	s := &Spec{Events: []Event{{Kind: EventKind(99), At: 0, Dur: time.Minute}}}
	if err := s.Validate(); err == nil {
		t.Fatal("accepted unknown event kind")
	}
	s = &Spec{Events: []Event{{Kind: FreqDroop, At: -time.Second, Dur: time.Minute}}}
	if err := s.Validate(); err == nil {
		t.Fatal("accepted negative event start")
	}
	s = &Spec{Policy: PolicyConfig{MaxShaveDOD: 1.5}}
	if err := s.Validate(); err == nil {
		t.Fatal("accepted MaxShaveDOD > 1")
	}
}
