package grid

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestSeriesAtPiecewise(t *testing.T) {
	s, err := NewSeries([]Point{{0, 100}, {time.Hour, 80}, {2 * time.Hour, 120}})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		at   time.Duration
		want float64
	}{
		{0, 100},
		{30 * time.Minute, 100},
		{time.Hour, 80},
		{90 * time.Minute, 80},
		{2 * time.Hour, 120},
		{48 * time.Hour, 120},
	}
	for _, c := range cases {
		if got := s.At(c.at); got != c.want {
			t.Errorf("At(%v) = %v, want %v", c.at, got, c.want)
		}
	}
}

func TestSeriesHoldsFirstValueBeforeStart(t *testing.T) {
	s, err := NewSeries([]Point{{10 * time.Minute, 42}})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.At(0); got != 42 {
		t.Fatalf("At(0) before first point = %v, want 42", got)
	}
}

func TestNewSeriesRejects(t *testing.T) {
	cases := []struct {
		name string
		pts  []Point
	}{
		{"empty", nil},
		{"negative-offset", []Point{{-time.Second, 1}}},
		{"nan", []Point{{0, math.NaN()}}},
		{"posinf", []Point{{0, math.Inf(1)}}},
		{"neginf", []Point{{0, math.Inf(-1)}}},
		{"unsorted", []Point{{time.Hour, 1}, {time.Minute, 2}}},
		{"duplicate-offset", []Point{{time.Minute, 1}, {time.Minute, 2}}},
	}
	for _, c := range cases {
		if _, err := NewSeries(c.pts); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestParseSeriesCSV(t *testing.T) {
	in := "t_s,value\n# day-ahead\n0, 40.5\n3600,95\n\n7200,-12\n"
	s, err := ParseSeriesCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	if got := s.At(30 * time.Minute); got != 40.5 {
		t.Fatalf("At(30m) = %v, want 40.5", got)
	}
	if got := s.At(2 * time.Hour); got != -12 {
		t.Fatalf("At(2h) = %v, want -12 (negative prices are legal)", got)
	}
}

func TestParseSeriesCSVRejects(t *testing.T) {
	cases := map[string]string{
		"nan-value":       "0,nan\n",
		"inf-value":       "0,+Inf\n",
		"negative-offset": "-5,10\n",
		"nan-offset":      "nan,10\n",
		"unsorted":        "100,1\n50,2\n",
		"three-fields":    "0,1,2\n",
		"garbage":         "hello\n",
		"huge-offset":     "1e300,1\n",
		"empty":           "# only comments\n",
	}
	for name, in := range cases {
		if _, err := ParseSeriesCSV(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted %q", name, in)
		}
	}
}

func TestParseSeriesJSON(t *testing.T) {
	s, err := ParseSeriesJSON([]byte(`[{"t_s":0,"v":205000},{"t_s":600,"v":143500}]`))
	if err != nil {
		t.Fatal(err)
	}
	if got := s.At(10 * time.Minute); got != 143500 {
		t.Fatalf("At(10m) = %v, want 143500", got)
	}
}

func TestParseSeriesJSONRejects(t *testing.T) {
	cases := map[string]string{
		"unknown-field":   `[{"t_s":0,"v":1,"x":2}]`,
		"negative-offset": `[{"t_s":-1,"v":1}]`,
		"unsorted":        `[{"t_s":10,"v":1},{"t_s":5,"v":1}]`,
		"trailing":        `[{"t_s":0,"v":1}] []`,
		"not-array":       `{"t_s":0,"v":1}`,
		"empty":           `[]`,
	}
	for name, in := range cases {
		if _, err := ParseSeriesJSON([]byte(in)); err == nil {
			t.Errorf("%s: accepted %s", name, in)
		}
	}
}

func TestSynthDeterministic(t *testing.T) {
	a, err := SynthPrice(7, 15*time.Minute, 24*time.Hour, 60, 40)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SynthPrice(7, 15*time.Minute, 24*time.Hour, 60, 40)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("same seed produced different synthetic price series")
	}
	c, err := SynthPrice(8, 15*time.Minute, 24*time.Hour, 60, 40)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() == c.Fingerprint() {
		t.Fatal("different seeds produced identical series")
	}
	carbon, err := SynthCarbon(7, 15*time.Minute, 24*time.Hour, 400, 300)
	if err != nil {
		t.Fatal(err)
	}
	if carbon.Min() < 0 {
		t.Fatalf("synthetic carbon intensity went negative: %v", carbon.Min())
	}
}

func TestShrinkCapSchedule(t *testing.T) {
	s, err := ShrinkCap(200e3, 0.3, time.Hour, 2*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.At(30 * time.Minute); got != 200e3 {
		t.Fatalf("pre-shrink cap = %v", got)
	}
	if got := s.At(90 * time.Minute); math.Abs(got-140e3) > 1e-6 {
		t.Fatalf("shrunk cap = %v, want 140000", got)
	}
	if got := s.At(3 * time.Hour); got != 200e3 {
		t.Fatalf("restored cap = %v", got)
	}
	if _, err := ShrinkCap(200e3, 1.5, time.Hour, 0); err == nil {
		t.Fatal("accepted shrink fraction > 1")
	}
	if _, err := ShrinkCap(200e3, 0.3, 2*time.Hour, time.Hour); err == nil {
		t.Fatal("accepted restore before shrink")
	}
}
