package grid

import (
	"fmt"
	"sort"
	"time"

	"coordcharge/internal/core"
	"coordcharge/internal/obs"
	"coordcharge/internal/power"
	"coordcharge/internal/rack"
	"coordcharge/internal/storm"
	"coordcharge/internal/units"
)

// Metrics counts grid-policy activity over a run.
type Metrics struct {
	// CapChanges counts effective-cap level changes (series steps and
	// cap-shrink event edges).
	CapChanges int
	// DroopEvents counts frequency-droop events fired.
	DroopEvents int
	// DRWindows counts demand-response windows opened.
	DRWindows int
	// DeferTicks counts ticks on which charge admission was deferred.
	DeferTicks int
	// DeferLifts counts times the MaxDefer SLA valve cut a deferral short.
	DeferLifts int
	// ShaveStarts counts rack discharges begun for peak shaving.
	ShaveStarts int
	// ShaveStops counts shaves ended by the policy (window close or
	// per-rack battery budget).
	ShaveStops int
	// ShaveRotations counts shaves ended early because the rack hit its
	// MaxShaveDOD battery budget.
	ShaveRotations int
	// ShavedEnergy is the IT energy carried by batteries during shaves —
	// energy the grid did not deliver at the peak.
	ShavedEnergy units.Energy
	// CapDemotions and CapPauses count the policy's within-tick cap
	// enforcement actions (charge demoted to safe current / paused into
	// the admission queue).
	CapDemotions int
	CapPauses    int
	// SLARepairs counts demoted charges restored to their deadline-aware
	// SLA current once headroom under the effective cap returned.
	SLARepairs int
	// ViolationTicks counts ticks whose measured feed draw exceeded the
	// effective cap; MaxOverCap is the worst excursion. A healthy run
	// keeps both at zero.
	ViolationTicks int
	MaxOverCap     units.Power
	// PeakDraw is the highest feed draw measured over the run.
	PeakDraw units.Power
	// GridEnergy is the total energy drawn from the feed.
	GridEnergy units.Energy
	// EnergyCost is the integral of price x draw, in dollars (price is
	// $/MWh). Zero when no price series is configured.
	EnergyCost float64
	// CarbonKg is the integral of carbon intensity x draw, in kg CO2
	// (intensity is gCO2/kWh). Zero when no carbon series is configured.
	CarbonKg float64
}

// Policy is the grid signal plane's runtime: the planning tick consults it
// for the effective feed limit and the defer signal, and its own Tick fires
// grid events, manages peak shaving, and enforces downward cap steps within
// the tick.
//
// Like the breaker guard, the policy acts over the server-management plane:
// it holds direct rack handles, so its pause/demote/shave actions are not
// subject to the charger-override command channel's latency or faults. That
// is what makes "zero cap violations at any tick" achievable on the async
// control plane, where planner-issued commands land a bus latency later.
//
// Call order per simulation tick (the scenario tick loop owns this):
//
//	Tick(now)        after racks stepped and the async engine ran,
//	                 before the sync controllers and guards
//	Account(now, dt) after controllers and guards, so it measures the
//	                 draw the grid actually saw this tick
//
// Policy is not safe for concurrent use; the control planes are
// single-threaded per tick.
type Policy struct {
	spec *Spec
	cfg  PolicyConfig // spec.Policy with defaults resolved

	node  *power.Node  //coordvet:transient wiring: Bind re-attaches before RestoreState
	racks []*rack.Rack //coordvet:transient wiring: Bind re-attaches before RestoreState
	queue *storm.Queue //coordvet:transient wiring: Bind re-attaches before RestoreState
	ccfg  core.Config  //coordvet:transient wiring: Bind re-attaches before RestoreState

	// Grid cursor: the index of the next unfired event (events are sorted
	// by Validate). This plus the defer/shave fields below is the mutable
	// state a checkpoint must carry for bit-exact resume.
	eventCursor int
	droopUntil  time.Duration
	deferring   bool
	deferSince  time.Duration
	deferLifted bool
	lastCap     units.Power // 0 until the first Tick observes the cap

	shaving  []*rack.Rack    // discharge order preserved for determinism
	shaveSet map[string]bool //coordvet:transient derived: RestoreState rebuilds it from the restored shaving list

	metrics Metrics

	// Observability (nil when detached).
	sink                    *obs.Sink    //coordvet:transient telemetry: re-attached by SetObs, not simulation state
	gCap, gPrice, gCarbon   *obs.Gauge   //coordvet:transient telemetry: re-attached by SetObs, not simulation state
	gExport, gDefer         *obs.Gauge   //coordvet:transient telemetry: re-attached by SetObs, not simulation state
	cDroop, cDR, cDeferred  *obs.Counter //coordvet:transient telemetry: re-attached by SetObs, not simulation state
	cShaveStart, cShaveStop *obs.Counter //coordvet:transient telemetry: re-attached by SetObs, not simulation state
	cCapShed, cViolation    *obs.Counter //coordvet:transient telemetry: re-attached by SetObs, not simulation state
}

// NewPolicy validates spec and builds its runtime. The policy is inert
// until Bind attaches it to a feed node, its racks, and the storm queue.
func NewPolicy(spec *Spec) (*Policy, error) {
	if spec == nil {
		return nil, fmt.Errorf("grid: nil spec")
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &Policy{
		spec:     spec,
		cfg:      spec.Policy.withDefaults(),
		shaveSet: make(map[string]bool),
	}, nil
}

// Spec returns the validated spec this policy runs.
func (p *Policy) Spec() *Spec {
	if p == nil {
		return nil
	}
	return p.spec
}

// SetObs attaches an observability sink: the grid signals surface as
// grid.cap_w / grid.price / grid.carbon / grid.export_w / grid.deferring
// gauges, policy activity is counted under grid.*, and every event fire,
// defer edge, shave, and cap-enforcement action is journaled to the flight
// recorder.
func (p *Policy) SetObs(s *obs.Sink) {
	if p == nil {
		return
	}
	p.sink = s
	p.gCap = s.Gauge("grid.cap_w")
	p.gPrice = s.Gauge("grid.price")
	p.gCarbon = s.Gauge("grid.carbon")
	p.gExport = s.Gauge("grid.export_w")
	p.gDefer = s.Gauge("grid.deferring")
	p.cDroop = s.Counter("grid.droop_events")
	p.cDR = s.Counter("grid.dr_windows")
	p.cDeferred = s.Counter("grid.defer_ticks")
	p.cShaveStart = s.Counter("grid.shave_starts")
	p.cShaveStop = s.Counter("grid.shave_stops")
	p.cCapShed = s.Counter("grid.cap_sheds")
	p.cViolation = s.Counter("grid.violation_ticks")
}

// Bind attaches the policy to the feed breaker it governs, the racks it may
// act on, and the storm admission queue its pauses feed. The queue is
// required: every pause the policy issues (droop, cap enforcement) is
// re-admitted by the existing storm machinery, never by the policy itself.
func (p *Policy) Bind(node *power.Node, racks []*rack.Rack, queue *storm.Queue, ccfg core.Config) error {
	if node == nil {
		return fmt.Errorf("grid: bind: nil node")
	}
	if queue == nil {
		return fmt.Errorf("grid: bind: a storm admission queue is required (grid pauses re-admit through it)")
	}
	rs := make([]*rack.Rack, len(racks))
	copy(rs, racks)
	sort.Slice(rs, func(i, j int) bool { return rs[i].Name() < rs[j].Name() })
	p.node, p.racks, p.queue, p.ccfg = node, rs, queue, ccfg
	return nil
}

// CapAt returns the interconnection cap at virtual time now, in watts, or 0
// when the grid places no cap (no cap series and no active cap-shrink
// event). The breaker guard consults this to shed against the effective
// limit instead of the breaker rating alone.
func (p *Policy) CapAt(now time.Duration) units.Power {
	if p == nil || p.spec == nil {
		return 0
	}
	base := 0.0
	if p.spec.Cap != nil {
		base = p.spec.Cap.At(now)
	}
	mult := 1.0
	for _, e := range p.spec.Events {
		if e.Kind == CapShrink && e.window(now) {
			mult *= 1 - e.Frac
		}
	}
	if base == 0 {
		if mult == 1 {
			return 0
		}
		if p.node == nil {
			return 0
		}
		base = float64(p.node.Limit())
	}
	return units.Power(base * mult)
}

// EffectiveLimit returns the feed limit the planner must respect at now:
// the minimum of the breaker limit and the interconnection cap.
func (p *Policy) EffectiveLimit(now time.Duration) units.Power {
	limit := p.node.Limit()
	if cap := p.CapAt(now); cap > 0 && cap < limit {
		return cap
	}
	return limit
}

// DeferCharging reports whether charge admission should be deferred at now
// — the postpone_charge idiom: while the energy price or carbon intensity
// sits above its threshold (or a frequency-droop event is in force), fresh
// charge starts route into the admission queue and admission waves hold.
// The MaxDefer SLA valve bounds each continuous deferral so a long
// expensive stretch cannot starve recharge deadlines; Tick maintains the
// underlying state machine.
func (p *Policy) DeferCharging(now time.Duration) bool {
	if p == nil {
		return false
	}
	return p.deferring || p.droopUntil > now
}

// deferSignal reports whether the price/carbon signal asks for deferral at
// now, ignoring the MaxDefer valve.
func (p *Policy) deferSignal(now time.Duration) bool {
	if p.cfg.DeferPrice > 0 && p.spec.Price.At(now) >= p.cfg.DeferPrice {
		return true
	}
	if p.cfg.DeferCarbon > 0 && p.spec.Carbon.At(now) >= p.cfg.DeferCarbon {
		return true
	}
	// An open shave window defers admission too: a freshly started
	// grid-powered charge would eat the very reduction the window exists to
	// deliver, so rotated-out racks queue until the window closes.
	if _, active := p.shaveTarget(now); active {
		return true
	}
	return false
}

// Busy reports whether the grid schedule still has work in flight at now:
// events yet to fire, a window still open, or racks still discharging for a
// shave. The scenario's early-exit check consults this so a run does not
// end before a scheduled demand-response window opens.
func (p *Policy) Busy(now time.Duration) bool {
	if p == nil {
		return false
	}
	if len(p.shaving) > 0 || p.droopUntil > now {
		return true
	}
	if p.eventCursor < len(p.spec.Events) {
		return true
	}
	for _, e := range p.spec.Events {
		if e.window(now) {
			return true
		}
	}
	return false
}

// ShavedPower returns the IT load currently carried by shaving batteries —
// the draw the grid is not seeing, exported as grid.export_w.
func (p *Policy) ShavedPower() units.Power {
	if p == nil {
		return 0
	}
	var sum units.Power
	for _, r := range p.shaving {
		sum += r.ITLoad()
	}
	return sum
}

// Shaving returns how many racks are currently discharging for a shave.
func (p *Policy) Shaving() int {
	if p == nil {
		return 0
	}
	return len(p.shaving)
}

// Metrics returns the accumulated policy counters.
func (p *Policy) Metrics() Metrics {
	if p == nil {
		return Metrics{}
	}
	return p.metrics
}

// comp is the policy's flight-recorder component label.
func (p *Policy) comp() string { return "grid/" + p.node.Name() }

// Tick advances the grid plane at virtual time now: fires due events,
// maintains the defer state machine, starts/stops peak shaving, and
// enforces a shrunken effective cap within the tick. Call after racks have
// stepped and the async engine ran, before the sync controllers and guards.
func (p *Policy) Tick(now time.Duration) {
	if p == nil || p.spec == nil {
		return
	}
	p.fireEvents(now)
	p.updateDefer(now)
	p.manageShave(now)
	p.enforceCap(now)
	p.repairSLA(now)
}

// fireEvents advances the event cursor over every event due at now.
func (p *Policy) fireEvents(now time.Duration) {
	for p.eventCursor < len(p.spec.Events) {
		e := p.spec.Events[p.eventCursor]
		if e.At > now {
			return
		}
		p.eventCursor++
		switch e.Kind {
		case FreqDroop:
			p.metrics.DroopEvents++
			p.cDroop.Inc()
			if until := e.At + e.Dur; until > p.droopUntil {
				p.droopUntil = until
			}
			if p.sink != nil {
				p.sink.Event(now, p.comp(), "droop-fire",
					"until_s", fmt.Sprintf("%.0f", (e.At+e.Dur).Seconds()))
			}
			p.pauseAllCharging(now)
		case DemandResponse:
			p.metrics.DRWindows++
			p.cDR.Inc()
			if p.sink != nil {
				p.sink.Event(now, p.comp(), "dr-open",
					"dur_s", fmt.Sprintf("%.0f", e.Dur.Seconds()),
					"frac", fmt.Sprintf("%.2f", e.Frac))
			}
		case CapShrink:
			if p.sink != nil {
				p.sink.Event(now, p.comp(), "capshrink-fire",
					"frac", fmt.Sprintf("%.2f", e.Frac),
					"dur_s", fmt.Sprintf("%.0f", e.Dur.Seconds()))
			}
		}
	}
}

// updateDefer runs the defer state machine: deferral starts when the
// price/carbon signal crosses its threshold and ends when the signal clears
// or the continuous stretch exceeds the MaxDefer SLA valve. A lifted
// deferral stays lifted until the signal clears, so one long expensive
// stretch defers at most MaxDefer.
func (p *Policy) updateDefer(now time.Duration) {
	signal := p.deferSignal(now)
	if !signal {
		if p.deferring && p.sink != nil {
			p.sink.Event(now, p.comp(), "defer-off")
		}
		p.deferring, p.deferLifted = false, false
		return
	}
	if p.deferLifted {
		return
	}
	if !p.deferring {
		p.deferring, p.deferSince = true, now
		if p.sink != nil {
			p.sink.Event(now, p.comp(), "defer-on",
				"price", fmt.Sprintf("%.1f", p.spec.Price.At(now)),
				"carbon", fmt.Sprintf("%.1f", p.spec.Carbon.At(now)))
		}
		return
	}
	if p.cfg.MaxDefer > 0 && now-p.deferSince >= p.cfg.MaxDefer {
		p.deferring, p.deferLifted = false, true
		p.metrics.DeferLifts++
		if p.sink != nil {
			p.sink.Event(now, p.comp(), "defer-lift",
				"held_s", fmt.Sprintf("%.0f", (now-p.deferSince).Seconds()))
		}
	}
}

// pauseAllCharging pauses every active charge into the admission queue —
// the frequency-droop response, the same mass pause a site outage causes.
// Reverse priority order for a deterministic flight journal.
func (p *Policy) pauseAllCharging(now time.Duration) {
	for _, r := range p.shedOrder() {
		if !r.InputUp() || !r.Charging() {
			continue
		}
		r.Postpone()
		p.queue.Enqueue(now, storm.Request{Name: r.Name(), Priority: r.Priority(), DOD: r.PendingDOD(), Since: r.ChargeStart()})
		if p.sink != nil {
			p.sink.Event(now, p.comp(), "droop-pause", "rack", r.Name())
		}
	}
}

// shaveTarget returns the grid-draw target in force at now and whether any
// shave window is active. Demand-response windows with a depth fraction
// target (1-Frac) x the effective cap; otherwise the configured
// ShaveTarget applies. Overlapping windows take the tightest target.
func (p *Policy) shaveTarget(now time.Duration) (units.Power, bool) {
	var target units.Power
	active := false
	consider := func(t units.Power) {
		if t <= 0 {
			return
		}
		if !active || t < target {
			target = t
		}
		active = true
	}
	for _, e := range p.spec.Events {
		if e.Kind != DemandResponse || !e.window(now) {
			continue
		}
		if e.Frac > 0 {
			consider(units.Power(float64(p.EffectiveLimit(now)) * (1 - e.Frac)))
		} else {
			consider(p.cfg.ShaveTarget)
		}
	}
	if p.cfg.ShavePrice > 0 && p.spec.Price.At(now) >= p.cfg.ShavePrice {
		consider(p.cfg.ShaveTarget)
	}
	return target, active
}

// manageShave starts and stops voluntary rack discharges to hold feed draw
// at the shave target. A shaving rack rides the same machinery as an
// outage: LoseInput puts its IT load on the battery, and the RestoreInput
// at shave end reports the true depth of discharge and starts the recharge
// that the storm admission queue then paces — so recharge SLAs are tracked
// exactly as for any other discharge.
func (p *Policy) manageShave(now time.Duration) {
	if p.node == nil {
		return
	}
	// Racks restored behind the policy's back (a site-wide Reenergize) are
	// no longer shaving, whatever our books say.
	p.reconcileShaving()
	if !p.node.Energized() {
		// An outage owns every battery; shave bookkeeping cleared above
		// does not apply (input is down fleet-wide), and no new shave may
		// start until the site re-energizes.
		return
	}
	target, active := p.shaveTarget(now)
	if !active {
		for len(p.shaving) > 0 {
			p.stopShave(now, 0, "window-closed")
		}
		return
	}
	// Rotate out racks that spent their battery budget; their recharge
	// enters the normal admission path immediately.
	for i := 0; i < len(p.shaving); {
		if p.shaving[i].BatteryDOD() >= p.cfg.MaxShaveDOD {
			p.metrics.ShaveRotations++
			p.stopShave(now, i, "dod-budget")
			continue
		}
		i++
	}
	// Recruit more batteries while draw sits above target.
	for p.node.Power() > target {
		r := p.nextShaveCandidate()
		if r == nil {
			return
		}
		r.LoseInput(now)
		p.shaving = append(p.shaving, r)
		p.shaveSet[r.Name()] = true
		p.metrics.ShaveStarts++
		p.cShaveStart.Inc()
		if p.sink != nil {
			p.sink.Event(now, p.comp(), "shave-start",
				"rack", r.Name(),
				"carry_w", fmt.Sprintf("%.0f", float64(r.ITLoad())))
		}
	}
}

// reconcileShaving drops racks from the shaving set whose input is already
// up — something outside the policy (site restore) ended their discharge.
func (p *Policy) reconcileShaving() {
	kept := p.shaving[:0]
	for _, r := range p.shaving {
		if r.InputUp() {
			delete(p.shaveSet, r.Name())
			p.metrics.ShaveStops++
			p.cShaveStop.Inc()
			continue
		}
		kept = append(kept, r)
	}
	p.shaving = kept
}

// stopShave restores input on shaving[i]: the rack reports its shave DOD
// and begins the recharge the admission machinery will pace.
func (p *Policy) stopShave(now time.Duration, i int, why string) {
	r := p.shaving[i]
	p.shaving = append(p.shaving[:i], p.shaving[i+1:]...)
	delete(p.shaveSet, r.Name())
	r.RestoreInput(now)
	p.metrics.ShaveStops++
	p.cShaveStop.Inc()
	if p.sink != nil {
		p.sink.Event(now, p.comp(), "shave-stop",
			"rack", r.Name(), "why", why,
			"dod", fmt.Sprintf("%.3f", float64(r.LastDOD())))
	}
}

// nextShaveCandidate picks the next rack to discharge: least critical class
// first, fullest battery first (most carry to give), then name. Returns nil
// when no rack is eligible.
func (p *Policy) nextShaveCandidate() *rack.Rack {
	var best *rack.Rack
	for _, r := range p.racks {
		if !p.eligibleToShave(r) {
			continue
		}
		if best == nil {
			best = r
			continue
		}
		if r.Priority() != best.Priority() {
			if r.Priority() > best.Priority() {
				best = r
			}
			continue
		}
		if r.BatteryDOD() != best.BatteryDOD() {
			if r.BatteryDOD() < best.BatteryDOD() {
				best = r
			}
			continue
		}
		if r.Name() < best.Name() {
			best = r
		}
	}
	return best
}

// eligibleToShave reports whether a rack may start a voluntary discharge:
// it must be on input power with real load, not charging or owing a paused
// charge (recharge SLAs outrank grid revenue), within its battery budget,
// and in a class the config allows to volunteer.
func (p *Policy) eligibleToShave(r *rack.Rack) bool {
	return r.InputUp() &&
		!p.shaveSet[r.Name()] &&
		r.Priority() >= p.cfg.ShavePriority &&
		r.ITLoad() > 0 &&
		!r.Charging() &&
		r.PendingDOD() <= 0 &&
		!p.queue.Contains(r.Name()) &&
		r.BatteryDOD() < p.cfg.MaxShaveDOD
}

// shedOrder returns racks in cap-enforcement order: reverse priority,
// deepest discharge first, then name — the breaker guard's ladder.
func (p *Policy) shedOrder() []*rack.Rack {
	order := make([]*rack.Rack, len(p.racks))
	copy(order, p.racks)
	sort.SliceStable(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if a.Priority() != b.Priority() {
			return a.Priority() > b.Priority()
		}
		if a.BatteryDOD() != b.BatteryDOD() {
			return a.BatteryDOD() > b.BatteryDOD()
		}
		return a.Name() < b.Name()
	})
	return order
}

// enforceCap brings feed draw under the effective cap within this tick when
// a cap step lands mid-recharge: demote charging racks to the safe current,
// then pause them into the admission queue, reverse priority — the guard's
// first two rungs, acted over direct rack handles so the correction is not
// subject to command-plane latency. IT capping is left to the breaker
// guard: an interconnection cap never outranks availability.
func (p *Policy) enforceCap(now time.Duration) {
	if p.node == nil || !p.node.Energized() {
		return
	}
	cap := p.CapAt(now)
	if cap <= 0 || cap >= p.node.Limit() {
		return
	}
	if p.node.Power() <= cap {
		return
	}
	safe := p.ccfg.SafeCurrent()
	order := p.shedOrder()
	for _, r := range order {
		if p.node.Power() <= cap {
			return
		}
		if !r.InputUp() || !r.Charging() || r.Pack().Setpoint() <= safe {
			continue
		}
		r.OverrideCurrent(safe)
		p.metrics.CapDemotions++
		p.cCapShed.Inc()
		if p.sink != nil {
			p.sink.Event(now, p.comp(), "cap-demote",
				"rack", r.Name(), "amps", fmt.Sprintf("%d", int(safe)))
		}
	}
	for _, r := range order {
		if p.node.Power() <= cap {
			return
		}
		if !r.InputUp() || !r.Charging() {
			continue
		}
		r.Postpone()
		p.metrics.CapPauses++
		p.cCapShed.Inc()
		p.queue.Enqueue(now, storm.Request{Name: r.Name(), Priority: r.Priority(), DOD: r.PendingDOD(), Since: r.ChargeStart()})
		if p.sink != nil {
			p.sink.Event(now, p.comp(), "cap-pause", "rack", r.Name())
		}
	}
}

// repairSLA is the demotion rungs' symmetric counterpart: charges stuck at
// or below the safe current — demoted by enforceCap or the breaker guard
// during a squeeze — are restored to the current their remaining deadline
// budget now requires, once headroom under the effective limit allows it.
// Without this, a charge demoted under a transient cap step crawls at the
// safe current for the rest of its recharge no matter how much room the
// restored cap leaves. Highest priority first, shallowest discharge first:
// the exact reverse of the shed ladder.
func (p *Policy) repairSLA(now time.Duration) {
	if p.node == nil || !p.node.Energized() {
		return
	}
	eff := p.EffectiveLimit(now)
	budget := eff - p.queue.Config().Margin(eff) - p.node.Power()
	if budget <= 0 {
		return
	}
	safe := p.ccfg.SafeCurrent()
	order := p.shedOrder()
	for i := len(order) - 1; i >= 0; i-- {
		r := order[i]
		if !r.InputUp() || !r.Charging() || p.shaveSet[r.Name()] {
			continue
		}
		setpoint := r.Pack().Setpoint()
		if setpoint > safe {
			continue
		}
		remaining := p.ccfg.Deadlines[r.Priority()] - (now - r.ChargeStart())
		want, _ := p.ccfg.SLACurrentWithin(r.Priority(), r.BatteryDOD(), remaining)
		if want <= setpoint {
			continue
		}
		cost := units.Power(float64(want-setpoint) * p.ccfg.WattsPerAmp)
		if cost > budget {
			continue
		}
		budget -= cost
		r.OverrideCurrent(want)
		p.metrics.SLARepairs++
		if p.sink != nil {
			p.sink.Event(now, p.comp(), "sla-repair",
				"rack", r.Name(), "amps", fmt.Sprintf("%d", int(want)))
		}
	}
}

// Account closes the tick: it measures the draw the feed actually presented
// to the grid after every controller and guard acted, scores it against the
// effective cap, integrates energy/cost/carbon, and publishes the grid
// gauges. dt is the tick length.
func (p *Policy) Account(now time.Duration, dt time.Duration) {
	if p == nil || p.spec == nil || p.node == nil {
		return
	}
	eff := p.EffectiveLimit(now)
	if p.lastCap == 0 {
		p.lastCap = eff
	} else if eff != p.lastCap {
		p.metrics.CapChanges++
		if p.sink != nil {
			p.sink.Event(now, p.comp(), "cap-change",
				"from_w", fmt.Sprintf("%.0f", float64(p.lastCap)),
				"to_w", fmt.Sprintf("%.0f", float64(eff)))
		}
		p.lastCap = eff
	}
	draw := units.Power(0)
	if p.node.Energized() {
		draw = p.node.Power()
	}
	if draw > p.metrics.PeakDraw {
		p.metrics.PeakDraw = draw
	}
	if over := draw - eff; over > capViolationSlack {
		p.metrics.ViolationTicks++
		p.cViolation.Inc()
		if over > p.metrics.MaxOverCap {
			p.metrics.MaxOverCap = over
		}
		if p.sink != nil {
			p.sink.Event(now, p.comp(), "cap-violation",
				"draw_w", fmt.Sprintf("%.0f", float64(draw)),
				"cap_w", fmt.Sprintf("%.0f", float64(eff)))
		}
	}
	if p.DeferCharging(now) {
		p.metrics.DeferTicks++
		p.cDeferred.Inc()
		p.gDefer.Set(1)
	} else {
		p.gDefer.Set(0)
	}
	hours := dt.Hours()
	p.metrics.GridEnergy += units.EnergyOver(draw, dt)
	shaved := p.ShavedPower()
	p.metrics.ShavedEnergy += units.EnergyOver(shaved, dt)
	var price, carbon float64
	if p.spec.Price != nil {
		price = p.spec.Price.At(now)
		p.metrics.EnergyCost += price * draw.MW() * hours
	}
	if p.spec.Carbon != nil {
		carbon = p.spec.Carbon.At(now)
		p.metrics.CarbonKg += carbon * draw.KW() * hours / 1000
	}
	p.gCap.Set(float64(eff))
	p.gPrice.Set(price)
	p.gCarbon.Set(carbon)
	p.gExport.Set(float64(shaved))
}

// capViolationSlack absorbs float accumulation noise in the draw sum; any
// real excursion is orders of magnitude larger.
const capViolationSlack units.Power = 0.5
