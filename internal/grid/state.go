package grid

import (
	"fmt"
	"time"

	"coordcharge/internal/rack"
	"coordcharge/internal/units"
)

// PolicyState is the grid policy's serializable state — the "grid cursor":
// the next-unfired-event index, the defer state machine, the droop latch,
// the shaving set (in discharge order), and the accumulated metrics. The
// spec (series, events, thresholds) is construction-time and rebuilt from
// the scenario spec; the checkpoint fingerprint covers it, so state can
// never be restored against a different schedule.
type PolicyState struct {
	EventCursor int           `json:"event_cursor"`
	DroopUntil  time.Duration `json:"droop_until"`
	Deferring   bool          `json:"deferring"`
	DeferSince  time.Duration `json:"defer_since"`
	DeferLifted bool          `json:"defer_lifted"`
	LastCap     units.Power   `json:"last_cap"`
	Shaving     []string      `json:"shaving,omitempty"`
	Metrics     Metrics       `json:"metrics"`
}

// ExportState captures the policy's mutable state. Shaving racks keep
// their discharge order.
func (p *Policy) ExportState() PolicyState {
	if p == nil {
		return PolicyState{}
	}
	st := PolicyState{
		EventCursor: p.eventCursor,
		DroopUntil:  p.droopUntil,
		Deferring:   p.deferring,
		DeferSince:  p.deferSince,
		DeferLifted: p.deferLifted,
		LastCap:     p.lastCap,
		Metrics:     p.metrics,
	}
	for _, r := range p.shaving {
		st.Shaving = append(st.Shaving, r.Name())
	}
	return st
}

// RestoreState overwrites the policy's mutable state from a checkpoint,
// resolving shaving-rack names against the bound rack set. Call after
// Bind.
func (p *Policy) RestoreState(st PolicyState) error {
	if st.EventCursor < 0 || st.EventCursor > len(p.spec.Events) {
		return fmt.Errorf("grid: state event cursor %d outside [0,%d]", st.EventCursor, len(p.spec.Events))
	}
	byName := make(map[string]*rack.Rack, len(p.racks))
	for _, r := range p.racks {
		byName[r.Name()] = r
	}
	shaving := make([]*rack.Rack, 0, len(st.Shaving))
	set := make(map[string]bool, len(st.Shaving))
	for _, name := range st.Shaving {
		r, ok := byName[name]
		if !ok {
			return fmt.Errorf("grid: state names unknown shaving rack %q", name)
		}
		shaving = append(shaving, r)
		set[name] = true
	}
	p.eventCursor = st.EventCursor
	p.droopUntil = st.DroopUntil
	p.deferring = st.Deferring
	p.deferSince = st.DeferSince
	p.deferLifted = st.DeferLifted
	p.lastCap = st.LastCap
	p.shaving = shaving
	p.shaveSet = set
	p.metrics = st.Metrics
	return nil
}
