// Package dynamo implements the coordinated control plane of the paper's
// §IV-B: a power monitoring and control system modelled on Facebook's
// Dynamo, extended with battery-charging coordination.
//
//   - An Agent runs on each rack's TOR switch: it reads rack power and BBU
//     recharge power and applies manual charging-current overrides (with the
//     ~20 s command-settling latency the prototype measured in Fig 11).
//   - A Controller protects one circuit breaker. The leaf controller (RPP)
//     detects charging sequences beginning under it and computes the initial
//     plan; every controller monitors its breaker for the entire charging
//     period and, on overload, first throttles battery charging in
//     lowest-priority-highest-discharge-first order and only then falls back
//     to priority-aware server power capping.
//   - A Hierarchy assembles one controller per breaker, mirroring the power
//     tree, and ticks them bottom-up.
package dynamo

import (
	"fmt"
	"sort"
	"time"

	"coordcharge/internal/core"
	"coordcharge/internal/power"
	"coordcharge/internal/rack"
	"coordcharge/internal/sim"
	"coordcharge/internal/units"
)

// Mode selects the charging-coordination policy a controller runs.
type Mode int

// Coordination modes.
const (
	// ModeNone performs no charging coordination: chargers act locally
	// (original or variable policy) and the controller only power-caps
	// servers on overload — the paper's two baseline hardware deployments.
	ModeNone Mode = iota
	// ModeGlobal runs the evaluation's baseline algorithm: all racks charge
	// at the same uniform rate chosen from available power, priority-blind.
	ModeGlobal
	// ModePriorityAware runs Algorithm 1 plus reverse-order throttling.
	ModePriorityAware
	// ModePostpone is ModePriorityAware with the future-work extension:
	// charges that do not fit are postponed entirely and restarted when
	// headroom returns.
	ModePostpone
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeNone:
		return "none"
	case ModeGlobal:
		return "global"
	case ModePriorityAware:
		return "priority-aware"
	case ModePostpone:
		return "postpone"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Agent is the per-rack request handler on the TOR switch. It performs no
// actions on its own (paper §IV-B): controllers issue reads and overrides
// through it.
type Agent struct {
	rack    *rack.Rack
	engine  *sim.Engine
	latency time.Duration
}

// NewAgent wraps a rack. engine may be nil when latency is zero; a non-zero
// latency requires an engine to schedule the deferred application.
func NewAgent(r *rack.Rack, engine *sim.Engine, latency time.Duration) *Agent {
	if latency > 0 && engine == nil {
		panic(fmt.Errorf("dynamo: agent for %s has latency %v but no engine", r.Name(), latency))
	}
	return &Agent{rack: r, engine: engine, latency: latency}
}

// Rack returns the underlying rack.
func (a *Agent) Rack() *rack.Rack { return a.rack }

// ReadPower returns the rack's total input power.
func (a *Agent) ReadPower() units.Power { return a.rack.Power() }

// ReadRecharge returns the BBU recharge component.
func (a *Agent) ReadRecharge() units.Power { return a.rack.RechargePower() }

// Latency returns the agent's command-settling delay.
func (a *Agent) Latency() time.Duration { return a.latency }

// Override issues a charging-current override; the new setpoint takes effect
// after the command-settling latency (Fig 11 measures ~20 s in production).
func (a *Agent) Override(i units.Current) {
	if a.latency <= 0 {
		a.rack.OverrideCurrent(i)
		return
	}
	a.engine.ScheduleAfter(a.latency, "override:"+a.rack.Name(), func(time.Duration) {
		a.rack.OverrideCurrent(i)
	})
}

// Metrics accumulates a controller's protective actions.
type Metrics struct {
	// MaxCapping is the largest instantaneous server power reduction the
	// controller had to apply (the Table III metric).
	MaxCapping units.Power
	// MaxCappingFraction is MaxCapping over the IT load at that instant.
	MaxCappingFraction units.Fraction
	// CappedEnergy integrates capped power over time.
	CappedEnergy units.Energy
	// OverridesIssued counts charging-current override commands.
	OverridesIssued int
	// ThrottleEvents counts ticks on which battery throttling was applied.
	ThrottleEvents int
	// PlansComputed counts charging sequences planned.
	PlansComputed int
}

// Controller protects one circuit breaker (paper §IV-B). Construct with
// NewController.
type Controller struct {
	node    *power.Node
	agents  []*Agent
	mode    Mode
	cfg     core.Config
	plans   bool
	metrics Metrics

	wasCharging map[*rack.Rack]bool
	postponed   map[*rack.Rack]core.RackInfo
	lastTick    time.Duration
}

// NewController builds a controller protecting node, managing the racks
// under it through agents. Planning controllers (plans=true) compute initial
// charging plans for sequences starting under them; the others only monitor
// and protect. In production the leaf controller plans for its RPP; the
// paper's MSB-level simulation plans at the MSB, where the power constraint
// lives, so the hierarchy marks its root as the planner.
func NewController(node *power.Node, agents []*Agent, mode Mode, cfg core.Config, plans bool) *Controller {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Controller{
		node:        node,
		agents:      agents,
		mode:        mode,
		cfg:         cfg,
		plans:       plans,
		wasCharging: make(map[*rack.Rack]bool),
		postponed:   make(map[*rack.Rack]core.RackInfo),
	}
}

// Node returns the protected breaker.
func (c *Controller) Node() *power.Node { return c.node }

// Metrics returns the accumulated protective-action metrics.
func (c *Controller) Metrics() Metrics { return c.metrics }

// rackInfo builds the planner's view of agent i's rack.
func (c *Controller) rackInfo(i int) core.RackInfo {
	r := c.agents[i].Rack()
	return core.RackInfo{ID: i, Name: r.Name(), Priority: r.Priority(), DOD: r.LastDOD()}
}

// Tick runs one monitoring cycle at virtual time now. Call it once per
// simulation step, after racks have advanced.
func (c *Controller) Tick(now time.Duration) {
	dt := now - c.lastTick
	c.lastTick = now
	if c.plans && c.coordinates() {
		c.detectChargingStart()
	}
	c.restartPostponed()
	c.protect(now, dt)
	c.node.Observe(now)
}

func (c *Controller) coordinates() bool {
	return c.mode == ModeGlobal || c.mode == ModePriorityAware || c.mode == ModePostpone
}

// detectChargingStart finds racks whose batteries began recharging since the
// last tick and, in a coordinating mode, plans and applies their charging
// currents using the breaker's available power.
func (c *Controller) detectChargingStart() {
	var fresh []core.RackInfo
	for i, a := range c.agents {
		r := a.Rack()
		charging := r.Charging()
		if charging && !c.wasCharging[r] {
			fresh = append(fresh, c.rackInfo(i))
		}
		c.wasCharging[r] = charging
	}
	if len(fresh) == 0 || !c.coordinates() {
		return
	}
	// Available power for recharge: the breaker's headroom over the IT load
	// (recharge power excluded — the plan decides it).
	available := c.node.Limit() - c.itLoad()
	cfg := c.cfg
	var plan []core.Assignment
	switch c.mode {
	case ModeGlobal:
		plan = core.PlanGlobal(available, fresh, cfg)
	case ModePostpone:
		cfg.AllowPostpone = true
		plan = core.PlanPriorityAware(available, fresh, cfg)
	default:
		plan = core.PlanPriorityAware(available, fresh, cfg)
	}
	c.metrics.PlansComputed++
	for _, asg := range plan {
		if asg.DOD <= 0 {
			continue
		}
		r := c.agents[asg.ID].Rack()
		if asg.Postponed {
			// Stop the charge entirely; remember the rack for restart.
			r.Pack().Abort()
			c.postponed[r] = asg.RackInfo
			c.wasCharging[r] = false
			continue
		}
		c.agents[asg.ID].Override(asg.Current)
		c.metrics.OverridesIssued++
	}
}

// restartPostponed resumes postponed charges, highest priority and lowest
// DOD first, while headroom allows their floor power (§IV-A future work,
// ModePostpone only).
func (c *Controller) restartPostponed() {
	if c.mode != ModePostpone || len(c.postponed) == 0 {
		return
	}
	floor := units.Power(float64(c.cfg.Surface.MinCurrent()) * c.cfg.WattsPerAmp)
	var waiting []core.RackInfo
	byID := make(map[int]*rack.Rack)
	for r, ri := range c.postponed {
		waiting = append(waiting, ri)
		byID[ri.ID] = r
	}
	sort.Slice(waiting, func(i, j int) bool {
		a, b := waiting[i], waiting[j]
		if a.Priority != b.Priority {
			return a.Priority < b.Priority
		}
		if a.DOD != b.DOD {
			return a.DOD < b.DOD
		}
		return a.ID < b.ID
	})
	headroom := c.node.Headroom()
	for _, ri := range waiting {
		if headroom < floor {
			break
		}
		r := byID[ri.ID]
		want, _ := c.cfg.SLACurrent(ri.Priority, ri.DOD)
		grant := c.cfg.Surface.MinCurrent()
		wantPower := units.Power(float64(want) * c.cfg.WattsPerAmp)
		if wantPower <= headroom {
			grant = want
		}
		r.Pack().StartCharge(grant, ri.DOD)
		headroom -= units.Power(float64(grant) * c.cfg.WattsPerAmp)
		c.wasCharging[r] = true
		c.metrics.OverridesIssued++
		delete(c.postponed, r)
	}
}

// itLoad sums the (capped) server power of the racks under this controller.
func (c *Controller) itLoad() units.Power {
	var total units.Power
	for _, a := range c.agents {
		if a.Rack().InputUp() {
			total += a.Rack().ITLoad()
		}
	}
	return total
}

// protect handles an instantaneous overload: battery throttling as the first
// line of defense (coordinating modes), then priority-aware server capping
// as the last resort. When the breaker is not overloaded, caps are released.
func (c *Controller) protect(now time.Duration, dt time.Duration) {
	excess := -c.headroomUncapped()
	if excess <= 0 {
		c.releaseCaps()
		return
	}
	switch c.mode {
	case ModePriorityAware, ModePostpone:
		excess -= c.throttleBatteries(excess)
	case ModeGlobal:
		excess -= c.lowerGlobalRate()
	}
	if excess < 0 {
		excess = 0
	}
	c.applyCaps(excess, dt)
}

// headroomUncapped is limit minus the draw the breaker would see with all
// caps released: capping decisions are recomputed from scratch each tick.
func (c *Controller) headroomUncapped() units.Power {
	var uncapped units.Power
	for _, a := range c.agents {
		r := a.Rack()
		if !r.InputUp() {
			continue
		}
		uncapped += r.Demand() + r.RechargePower()
	}
	// Include draw from loads not managed by this controller (none in the
	// standard topologies, but a child breaker may have foreign loads).
	return c.node.Limit() - uncapped
}

// throttleBatteries sets charging currents to the minimum in reverse order
// until the projected recovery covers excess; it returns the projected
// recovered power.
func (c *Controller) throttleBatteries(excess units.Power) units.Power {
	var active []core.ActiveCharge
	for i, a := range c.agents {
		r := a.Rack()
		if r.InputUp() && r.Charging() {
			active = append(active, core.ActiveCharge{
				RackInfo: c.rackInfo(i),
				Current:  r.Pack().Setpoint(),
			})
		}
	}
	ids := core.ThrottleToMinimum(excess, active, c.cfg)
	if len(ids) == 0 {
		return 0
	}
	c.metrics.ThrottleEvents++
	min := c.cfg.Surface.MinCurrent()
	var recovered units.Power
	current := make(map[int]units.Current, len(active))
	for _, ac := range active {
		current[ac.ID] = ac.Current
	}
	for _, id := range ids {
		c.agents[id].Override(min)
		c.metrics.OverridesIssued++
		// Only instantly-settling overrides count against this tick's
		// excess: a command still in its settling window has not recovered
		// anything yet, and Dynamo caps on the overload it measures now
		// (releasing the caps once the throttle lands).
		if c.agents[id].Latency() <= 0 {
			recovered += units.Power(float64(current[id]-min) * c.cfg.WattsPerAmp)
		}
	}
	return recovered
}

// lowerGlobalRate recomputes the uniform rate from present available power
// and applies it to every charging rack (the global baseline's only
// overload response short of capping). It returns the projected recovery.
func (c *Controller) lowerGlobalRate() units.Power {
	var charging []core.RackInfo
	var before units.Power
	for i, a := range c.agents {
		r := a.Rack()
		if r.InputUp() && r.Charging() {
			charging = append(charging, c.rackInfo(i))
			before += r.RechargePower()
		}
	}
	if len(charging) == 0 {
		return 0
	}
	available := c.node.Limit() - c.itLoad()
	plan := core.PlanGlobal(available, charging, c.cfg)
	var after units.Power
	for _, asg := range plan {
		c.agents[asg.ID].Override(asg.Current)
		c.metrics.OverridesIssued++
		after += asg.RechargePower(c.cfg.WattsPerAmp)
	}
	c.metrics.ThrottleEvents++
	if after >= before {
		return 0
	}
	return before - after
}

// applyCaps distributes a required server power reduction across racks,
// lowest priority first (Dynamo caps "according to priority of services
// running on those servers"), and records the Table III metrics.
func (c *Controller) applyCaps(needed units.Power, dt time.Duration) {
	order := make([]*rack.Rack, 0, len(c.agents))
	for _, a := range c.agents {
		if a.Rack().InputUp() {
			order = append(order, a.Rack())
		}
	}
	sort.SliceStable(order, func(i, j int) bool {
		return order[i].Priority() > order[j].Priority()
	})
	source := c.node.Name()
	var applied units.Power
	remaining := needed
	for _, r := range order {
		if remaining <= 0 {
			r.Uncap(source)
			continue
		}
		cut := r.Demand()
		if cut > remaining {
			cut = remaining
		}
		r.Cap(source, r.Demand()-cut)
		applied += cut
		remaining -= cut
	}
	if applied > c.metrics.MaxCapping {
		c.metrics.MaxCapping = applied
		if it := c.itLoad() + applied; it > 0 {
			c.metrics.MaxCappingFraction = units.Fraction(float64(applied) / float64(it))
		}
	}
	if dt > 0 {
		c.metrics.CappedEnergy += units.EnergyOver(applied, dt)
	}
}

// releaseCaps removes this controller's server power caps (headroom has
// returned); caps from other controllers are untouched.
func (c *Controller) releaseCaps() {
	for _, a := range c.agents {
		a.Rack().Uncap(c.node.Name())
	}
}
