// Package dynamo implements the coordinated control plane of the paper's
// §IV-B: a power monitoring and control system modelled on Facebook's
// Dynamo, extended with battery-charging coordination.
//
//   - An Agent runs on each rack's TOR switch: it reads rack power and BBU
//     recharge power and applies manual charging-current overrides (with the
//     ~20 s command-settling latency the prototype measured in Fig 11).
//   - A Controller protects one circuit breaker. The leaf controller (RPP)
//     detects charging sequences beginning under it and computes the initial
//     plan; every controller monitors its breaker for the entire charging
//     period and, on overload, first throttles battery charging in
//     lowest-priority-highest-discharge-first order and only then falls back
//     to priority-aware server power capping.
//   - A Hierarchy assembles one controller per breaker, mirroring the power
//     tree, and ticks them bottom-up.
//
// The control plane is hardened against a degraded network and crashing
// components (see internal/faults): telemetry reads are timestamped and
// stale or missing data is handled conservatively (the affected rack is
// assumed to draw worst-case recharge power), charging-current overrides are
// confirmed against subsequent telemetry and retransmitted with exponential
// backoff, controllers crash and restart reconstructing their state from
// agent reads, and racks run a local fail-safe watchdog that reverts to the
// safe low-current charging policy when controller contact is lost (see
// rack.SetWatchdog).
package dynamo

import (
	"fmt"
	"sort"
	"strconv"
	"time"

	"coordcharge/internal/charger"
	"coordcharge/internal/core"
	"coordcharge/internal/faults"
	"coordcharge/internal/grid"
	"coordcharge/internal/obs"
	"coordcharge/internal/power"
	"coordcharge/internal/rack"
	"coordcharge/internal/sim"
	"coordcharge/internal/storm"
	"coordcharge/internal/units"
)

// Mode selects the charging-coordination policy a controller runs.
type Mode int

// Coordination modes.
const (
	// ModeNone performs no charging coordination: chargers act locally
	// (original or variable policy) and the controller only power-caps
	// servers on overload — the paper's two baseline hardware deployments.
	ModeNone Mode = iota
	// ModeGlobal runs the evaluation's baseline algorithm: all racks charge
	// at the same uniform rate chosen from available power, priority-blind.
	ModeGlobal
	// ModePriorityAware runs Algorithm 1 plus reverse-order throttling.
	ModePriorityAware
	// ModePostpone is ModePriorityAware with the future-work extension:
	// charges that do not fit are postponed entirely and restarted when
	// headroom returns.
	ModePostpone
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeNone:
		return "none"
	case ModeGlobal:
		return "global"
	case ModePriorityAware:
		return "priority-aware"
	case ModePostpone:
		return "postpone"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Agent is the per-rack request handler on the TOR switch. It performs no
// actions on its own (paper §IV-B): controllers issue reads and overrides
// through it. With a fault injector attached, the agent models the failure
// modes of the real read/override path: lost and stale reads, dropped,
// delayed, and duplicated commands, and whole-agent crashes.
type Agent struct {
	rack    *rack.Rack
	engine  *sim.Engine
	latency time.Duration

	inj      *faults.Injector //coordvet:transient wiring: SetFaults re-attaches the injector before resume
	comp     string
	last     Snapshot
	lastVer  uint64 // rack.Version() when last was taken (fault-free path)
	haveLast bool
}

// NewAgent wraps a rack. engine may be nil when latency is zero; a non-zero
// latency requires an engine to schedule the deferred application.
func NewAgent(r *rack.Rack, engine *sim.Engine, latency time.Duration) *Agent {
	if latency > 0 && engine == nil {
		panic(fmt.Errorf("dynamo: agent for %s has latency %v but no engine", r.Name(), latency))
	}
	return &Agent{rack: r, engine: engine, latency: latency, comp: "agent/" + r.Name()}
}

// SetFaults attaches a fault injector to the agent's read/override path.
func (a *Agent) SetFaults(inj *faults.Injector) { a.inj = inj }

// Rack returns the underlying rack.
func (a *Agent) Rack() *rack.Rack { return a.rack }

// ReadPower returns the rack's total input power.
func (a *Agent) ReadPower() units.Power { return a.rack.Power() }

// ReadRecharge returns the BBU recharge component.
func (a *Agent) ReadRecharge() units.Power { return a.rack.RechargePower() }

// Latency returns the agent's command-settling delay.
func (a *Agent) Latency() time.Duration { return a.latency }

// snapshotRack builds a timestamped telemetry snapshot of a rack.
func snapshotRack(r *rack.Rack, now time.Duration) Snapshot {
	return Snapshot{
		Taken:       now,
		Name:        r.Name(),
		Priority:    r.Priority(),
		Demand:      r.Demand(),
		ITLoad:      r.ITLoad(),
		Recharge:    r.RechargePower(),
		DOD:         r.LastDOD(),
		PendingDOD:  r.PendingDOD(),
		Charging:    r.Charging(),
		InputUp:     r.InputUp(),
		Setpoint:    r.Pack().Setpoint(),
		ChargeStart: r.ChargeStart(),
	}
}

// Sample reads the rack's telemetry at virtual time now. It reports false
// when the read fails (lost reply or crashed agent); an injected stale read
// returns the previous snapshot with its original timestamp, which the
// controller detects by comparing Taken against its staleness bound.
func (a *Agent) Sample(now time.Duration) (Snapshot, bool) {
	if a.inj != nil {
		if !a.inj.Up(a.comp, now) || a.inj.DropRead() {
			return Snapshot{}, false
		}
		if a.haveLast && a.inj.StaleRead() {
			return a.last, true
		}
		s := snapshotRack(a.rack, now)
		a.last, a.haveLast = s, true
		return s, true
	}
	a.refresh(now)
	return a.last, true
}

// refresh rebuilds the agent's cached snapshot unless it already reflects the
// rack's state at this exact (time, version) pair. The cache is shared by
// every controller sampling through this agent, so a rack snapshotted by the
// RPP controller is a copy — not a rebuild — for the SB and MSB controllers
// on the same tick. Fault-free path only: with an injector attached, Sample
// keeps the historical per-call read semantics (and RNG draw order).
func (a *Agent) refresh(now time.Duration) {
	v := a.rack.Version()
	if a.haveLast && a.lastVer == v && a.last.Taken == now {
		return
	}
	a.last = snapshotRack(a.rack, now)
	a.lastVer, a.haveLast = v, true
}

// Override issues a charging-current override at virtual time now; the new
// setpoint takes effect after the command-settling latency (Fig 11 measures
// ~20 s in production). It reports whether the command entered the delivery
// path — false means it was dropped immediately (crashed agent or injected
// command loss); true is NOT a delivery guarantee once latency or injected
// delay is involved, which is why controllers confirm overrides against
// telemetry and retransmit. A delivered override counts as controller
// contact for the rack's fail-safe watchdog.
func (a *Agent) Override(now time.Duration, i units.Current) bool {
	var extra time.Duration
	dup := false
	if a.inj != nil {
		if !a.inj.Up(a.comp, now) || a.inj.DropCommand() {
			return false
		}
		if a.engine != nil {
			extra = a.inj.CommandDelay()
		}
		dup = a.inj.DupCommand()
	}
	apply := func(at time.Duration) {
		a.rack.ControllerContact(at)
		a.rack.OverrideCurrent(i)
	}
	delay := a.latency + extra
	if delay <= 0 || a.engine == nil {
		apply(now)
		if dup {
			apply(now)
		}
		return true
	}
	a.engine.ScheduleAfter(delay, "override:"+a.rack.Name(), apply)
	if dup {
		a.engine.ScheduleAfter(delay, "override:"+a.rack.Name(), apply)
	}
	return true
}

// Heartbeat delivers a controller-contact keepalive to the rack, feeding its
// fail-safe watchdog. It rides the same lossy command path as overrides —
// subject to the command-settling latency and injected delay — and reports
// whether it entered the delivery path.
func (a *Agent) Heartbeat(now time.Duration) bool {
	var extra time.Duration
	if a.inj != nil {
		if !a.inj.Up(a.comp, now) || a.inj.DropCommand() {
			return false
		}
		if a.engine != nil {
			extra = a.inj.CommandDelay()
		}
	}
	delay := a.latency + extra
	if delay <= 0 || a.engine == nil {
		a.rack.ControllerContact(now)
		return true
	}
	a.engine.ScheduleAfter(delay, "heartbeat:"+a.rack.Name(), a.rack.ControllerContact)
	return true
}

// RetryPolicy bounds the controller's override retransmission: an override
// unconfirmed by telemetry after Timeout is retransmitted with the timeout
// growing by Backoff per attempt, up to MaxAttempts total sends.
type RetryPolicy struct {
	// Timeout is the initial confirmation timeout. Zero disables retries.
	// It must exceed the agents' command-settling latency, or unsettled
	// commands will be retransmitted spuriously (harmless — overrides are
	// idempotent — but wasteful).
	Timeout time.Duration
	// Backoff multiplies the timeout after each attempt (values below 1
	// are treated as the default 2).
	Backoff float64
	// MaxAttempts caps total sends including the first (values below 1 are
	// treated as the default 4).
	MaxAttempts int
}

// DefaultRetryPolicy is sized for the prototype's ~20 s command settling: a
// 30 s initial timeout doubling across 4 total attempts.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{Timeout: 30 * time.Second, Backoff: 2, MaxAttempts: 4}
}

func (p RetryPolicy) enabled() bool { return p.Timeout > 0 }

func (p RetryPolicy) maxAttempts() int {
	if p.MaxAttempts < 1 {
		return 4
	}
	return p.MaxAttempts
}

// attemptTimeout returns the confirmation timeout for the given attempt
// number (1-based): Timeout · Backoff^(attempt−1).
func (p RetryPolicy) attemptTimeout(attempt int) time.Duration {
	b := p.Backoff
	if b < 1 {
		b = 2
	}
	d := float64(p.Timeout)
	for i := 1; i < attempt; i++ {
		d *= b
	}
	return time.Duration(d)
}

// Metrics accumulates a controller's protective actions.
type Metrics struct {
	// MaxCapping is the largest instantaneous server power reduction the
	// controller had to apply (the Table III metric).
	MaxCapping units.Power
	// MaxCappingFraction is MaxCapping over the IT load at that instant.
	MaxCappingFraction units.Fraction
	// CappedEnergy integrates capped power over time.
	CappedEnergy units.Energy
	// OverridesIssued counts charging-current override commands (first
	// sends; retransmissions count under Retries).
	OverridesIssued int
	// ThrottleEvents counts ticks on which battery throttling was applied.
	ThrottleEvents int
	// PlansComputed counts charging sequences planned.
	PlansComputed int
	// Retries counts override retransmissions after confirmation timeouts.
	Retries int
	// AbandonedOverrides counts overrides given up after MaxAttempts.
	AbandonedOverrides int
	// StaleTelemetry counts rack evaluations that fell back to the
	// conservative worst-case-recharge assumption because telemetry was
	// missing or stale.
	StaleTelemetry int
	// Crashes and Restarts count controller fault transitions.
	Crashes, Restarts int
}

// ControllerOptions carries the degraded-mode knobs of a controller.
type ControllerOptions struct {
	// Engine schedules retry timeouts and (through the agents) command
	// settling on virtual time. With a nil engine, retries are checked on
	// the controller's own tick cadence instead.
	Engine *sim.Engine
	// Injector, when set, drives the controller's crash schedule (component
	// "controller/<node>"); agents carry their own injector reference.
	Injector *faults.Injector
	// StaleAfter is the telemetry freshness bound: a snapshot older than
	// this is treated conservatively. Zero means telemetry never goes
	// stale (the pre-fault behaviour).
	StaleAfter time.Duration
	// Retry is the override retransmission policy; the zero value disables
	// retries.
	Retry RetryPolicy
	// Heartbeat emits a per-tick controller-contact keepalive to every
	// agent, feeding the racks' fail-safe watchdogs.
	Heartbeat bool
	// Storm arms recharge-storm admission control on a planning controller:
	// a correlated batch of charging starts is paused into a queue and
	// re-admitted in priority-aware waves under measured headroom instead of
	// being planned (and floored) all at once. Ignored on non-planning
	// controllers.
	Storm *storm.Config
	// Grid attaches the grid signal plane to a planning controller: planning
	// and admission budgets derive from the effective feed limit (the
	// minimum of the breaker limit and the interconnection cap) instead of
	// the breaker rating, and fresh charge starts defer into the admission
	// queue while the grid policy says price/carbon is over threshold.
	Grid *grid.Policy
	// Obs attaches an observability sink: protective actions are counted
	// under dynamo.* metrics and every control decision is journaled to the
	// flight recorder. Nil disables instrumentation at zero cost.
	Obs *obs.Sink
}

// obsHandles caches a controller's metric handles so hot paths never take
// the registry lock. The zero value (nil sink, nil handles) no-ops
// everywhere: instrumentation costs nothing when no sink is attached.
type obsHandles struct {
	sink                                    *obs.Sink
	cPlans, cOverrides, cRetries, cAbandons *obs.Counter
	cConfirms, cThrottles, cStale           *obs.Counter
	cCrashes, cRestarts                     *obs.Counter
	hConfirm                                *obs.Histogram
	gHeadroom                               *obs.Gauge
}

// newObsHandles resolves the dynamo.* metric handles against a sink; a nil
// sink yields the no-op zero value. Counters are shared across controllers
// (they aggregate fleet-wide); the headroom gauge is per-breaker.
func newObsHandles(s *obs.Sink, nodeName string) obsHandles {
	if s == nil {
		return obsHandles{}
	}
	return obsHandles{
		sink:       s,
		cPlans:     s.Counter("dynamo.plans"),
		cOverrides: s.Counter("dynamo.overrides"),
		cRetries:   s.Counter("dynamo.override_retries"),
		cAbandons:  s.Counter("dynamo.override_abandons"),
		cConfirms:  s.Counter("dynamo.override_confirms"),
		cThrottles: s.Counter("dynamo.throttle_events"),
		cStale:     s.Counter("dynamo.stale_telemetry"),
		cCrashes:   s.Counter("dynamo.crashes"),
		cRestarts:  s.Counter("dynamo.restarts"),
		hConfirm:   s.Histogram("dynamo.override_confirm_s", 0),
		gHeadroom:  s.Gauge("headroom_w." + nodeName),
	}
}

// pendingOverride tracks an override awaiting telemetry confirmation.
type pendingOverride struct {
	want     units.Current
	attempts int
	issuedAt time.Duration
	due      time.Duration // tick-driven deadline (engine == nil)
	ev       *sim.Event    // engine-driven deadline
}

// Controller protects one circuit breaker (paper §IV-B). Construct with
// NewController or NewControllerOpts.
type Controller struct {
	node    *power.Node
	agents  []*Agent
	mode    Mode
	cfg     core.Config
	plans   bool
	metrics Metrics

	wasCharging []bool // last observed Charging bit, index-aligned with agents
	postponed   map[*rack.Rack]core.RackInfo
	lastTick    time.Duration

	stormQ *storm.Queue   // nil unless storm admission is armed
	grid   *grid.Policy   // nil unless the grid signal plane is attached
	byName map[string]int // rack name → agent index

	engine     *sim.Engine
	inj        *faults.Injector
	comp       string
	staleAfter time.Duration
	retry      RetryPolicy
	heartbeat  bool
	down       bool

	// tel holds the last known telemetry per agent (index-aligned); telOK
	// marks entries that have been read at least once since (re)start, and
	// telOKCount tracks how many are set so the all-fresh fast path in views
	// is a single compare. telVer records the rack version each fault-free
	// entry was taken at, so re-sampling an unchanged rack skips the copy.
	tel        []Snapshot
	telOK      []bool
	telOKCount int //coordvet:transient derived: RestoreState recounts it from telOK
	telVer     []uint64
	viewBuf    []Snapshot //coordvet:transient scratch: per-call view buffer, rebuilt by views
	pending    map[int]*pendingOverride

	// mutated records whether this tick's planning/admission phase touched
	// any rack; anyInj (recomputed by each sample) whether any agent carries
	// a fault injector. Together they decide whether the intra-tick
	// re-sample can be skipped: with no mutations and no injectors it is a
	// pure no-op, but injected reads draw randomness per call and must keep
	// their historical draw order.
	mutated bool //coordvet:transient scratch: per-tick flag, reset by Tick
	anyInj  bool //coordvet:transient derived: recomputed by every sample

	// lastFresh and telSummaried gate the planning tick's telemetry summary:
	// one is journalled only when something changed (a mutation, a freshness
	// change, or the first tick after construction or restart). Both are real
	// state, not caches — a resumed run must keep suppressing exactly where
	// the uninterrupted run would — so ExportState/RestoreState carry them.
	lastFresh    int
	telSummaried bool

	obsHandles
}

// NewController builds a controller protecting node, managing the racks
// under it through agents. Planning controllers (plans=true) compute initial
// charging plans for sequences starting under them; the others only monitor
// and protect. In production the leaf controller plans for its RPP; the
// paper's MSB-level simulation plans at the MSB, where the power constraint
// lives, so the hierarchy marks its root as the planner.
func NewController(node *power.Node, agents []*Agent, mode Mode, cfg core.Config, plans bool) *Controller {
	return NewControllerOpts(node, agents, mode, cfg, plans, ControllerOptions{})
}

// NewControllerOpts is NewController with degraded-mode options.
func NewControllerOpts(node *power.Node, agents []*Agent, mode Mode, cfg core.Config, plans bool, opts ControllerOptions) *Controller {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	c := &Controller{
		node:        node,
		agents:      agents,
		mode:        mode,
		cfg:         cfg,
		plans:       plans,
		wasCharging: make([]bool, len(agents)),
		postponed:   make(map[*rack.Rack]core.RackInfo),
		byName:      make(map[string]int, len(agents)),
		engine:      opts.Engine,
		inj:         opts.Injector,
		comp:        "controller/" + node.Name(),
		staleAfter:  opts.StaleAfter,
		retry:       opts.Retry,
		heartbeat:   opts.Heartbeat,
		tel:         make([]Snapshot, len(agents)),
		telOK:       make([]bool, len(agents)),
		telVer:      make([]uint64, len(agents)),
		viewBuf:     make([]Snapshot, len(agents)),
		pending:     make(map[int]*pendingOverride),
		lastFresh:   -1,
	}
	for i, a := range agents {
		c.byName[a.Rack().Name()] = i
	}
	if opts.Storm != nil && plans {
		c.stormQ = storm.NewQueue(*opts.Storm)
	}
	if opts.Grid != nil && plans {
		c.grid = opts.Grid
	}
	c.obsHandles = newObsHandles(opts.Obs, node.Name())
	if c.stormQ != nil && opts.Obs != nil {
		c.stormQ.SetObs(opts.Obs)
	}
	return c
}

// Node returns the protected breaker.
func (c *Controller) Node() *power.Node { return c.node }

// Metrics returns the accumulated protective-action metrics.
func (c *Controller) Metrics() Metrics { return c.metrics }

// Down reports whether the controller is currently crashed.
func (c *Controller) Down() bool { return c.down }

// Mutated reports whether the last completed Tick's planning, admission, or
// protection phase touched any rack. The event kernel reads it as the
// quiescence signal: a tick that mutated nothing and left no pending work
// behind would be a verbatim no-op if repeated on unchanged inputs.
func (c *Controller) Mutated() bool { return c.mutated }

// PendingCount returns the number of issued overrides still awaiting
// confirmation or retry.
func (c *Controller) PendingCount() int { return len(c.pending) }

// PostponedCount returns the number of charges deferred by ModePostpone.
func (c *Controller) PostponedCount() int { return len(c.postponed) }

// SyncClock moves the controller's tick clock to now without running a tick.
// A time-skipping caller sets it to the previous tick instant before
// re-entering the dense loop, so the next Tick computes the same dt a
// never-skipped controller would.
func (c *Controller) SyncClock(now time.Duration) { c.lastTick = now }

// Crash takes the controller down, losing all in-memory state — exactly what
// a process crash does. While down, ticks only advance the breaker's trip
// physics. With a fault injector attached, crashes also happen on the
// injector's schedule.
func (c *Controller) Crash() {
	if !c.down {
		c.crash()
	}
}

// Restart brings a crashed controller back at virtual time now,
// reconstructing its working state from agent reads.
func (c *Controller) Restart(now time.Duration) {
	if c.down {
		c.restart(now)
	}
}

func (c *Controller) crash() {
	c.down = true
	c.metrics.Crashes++
	c.cCrashes.Inc()
	// Crash() has no virtual-time argument; the last tick's timestamp is the
	// closest deterministic stand-in.
	c.sink.Event(c.lastTick, c.comp, "crash")
	for i := range c.wasCharging {
		c.wasCharging[i] = false
	}
	c.postponed = make(map[*rack.Rack]core.RackInfo)
	if c.stormQ != nil {
		// The in-memory admission queue dies with the process; the racks'
		// own pending-DOD bookkeeping survives and restart re-enqueues it.
		c.stormQ.Reset()
	}
	for i := range c.telOK {
		c.telOK[i] = false
	}
	c.telOKCount = 0
	if c.engine != nil {
		for idx := range c.agents {
			if p := c.pending[idx]; p != nil && p.ev != nil {
				c.engine.Cancel(p.ev)
			}
		}
	}
	c.pending = make(map[int]*pendingOverride)
	// The next surviving tick must journal a fresh telemetry summary: the
	// restarted process has no memory of what it last reported.
	c.telSummaried = false
	c.lastFresh = -1
}

// restart reconstructs the controller's state from agent reads: racks
// observed charging are marked as known sequences (so an in-flight charge is
// not spuriously re-planned), and postponed charges are recovered from the
// racks' own pending-DOD bookkeeping. Racks whose reads fail stay unknown
// and resynchronise on a later tick.
func (c *Controller) restart(now time.Duration) {
	c.down = false
	c.metrics.Restarts++
	c.cRestarts.Inc()
	c.sink.Event(now, c.comp, "restart")
	c.sample(now)
	for i, a := range c.agents {
		if !c.telOK[i] {
			continue
		}
		r := a.Rack()
		c.wasCharging[i] = c.tel[i].Charging
		switch {
		case c.stormQ != nil && c.tel[i].PendingDOD > 0:
			c.stormQ.Enqueue(now, storm.Request{Name: c.tel[i].Name, Priority: c.tel[i].Priority, DOD: c.tel[i].PendingDOD, Since: c.tel[i].ChargeStart})
		case c.mode == ModePostpone && c.tel[i].PendingDOD > 0:
			c.postponed[r] = core.RackInfo{ID: i, Name: c.tel[i].Name, Priority: c.tel[i].Priority, DOD: c.tel[i].PendingDOD}
		}
	}
}

// Tick runs one monitoring cycle at virtual time now. Call it once per
// simulation step, after racks have advanced.
func (c *Controller) Tick(now time.Duration) {
	dt := now - c.lastTick
	c.lastTick = now
	up := !c.down
	if c.inj != nil {
		up = c.inj.Up(c.comp, now)
	}
	if !up {
		if !c.down {
			c.crash()
		}
		// The breaker's trip physics continue regardless of the
		// controller's health.
		c.node.Observe(now)
		return
	}
	if c.down {
		c.restart(now)
	}
	c.sample(now)
	c.mutated = false
	if c.plans && c.coordinates() {
		c.detectChargingStart(now)
	}
	c.admitStorm(now)
	c.restartPostponed()
	if c.engine == nil {
		c.checkPending(now)
	}
	// Re-sample so protection sees the effect of instantly-settling
	// overrides issued above, exactly as the pre-fault controller's live
	// reads did. When nothing was issued and every read is fault-free the
	// re-sample is a verbatim no-op, so it is skipped.
	if c.mutated || c.anyInj {
		c.sample(now)
	}
	c.protect(now, dt)
	if c.heartbeat {
		for _, a := range c.agents {
			a.Heartbeat(now)
		}
	}
	if c.sink != nil {
		c.gHeadroom.Set(float64(c.node.Headroom()))
		if c.plans {
			// One telemetry summary per planning tick that changed something
			// (per-rack — or per-quiescent-tick — events would flood the
			// flight recorder at fleet scale). The gate is what lets the event
			// kernel skip quiescent ticks without losing digest parity: a tick
			// that mutated nothing and saw no freshness change journals
			// nothing, so not running it at all is observationally identical.
			fresh := 0
			for i := range c.agents {
				if c.fresh(i, now) {
					fresh++
				}
			}
			if c.mutated || fresh != c.lastFresh || !c.telSummaried {
				c.lastFresh = fresh
				c.telSummaried = true
				c.sink.Event(now, c.comp, "telemetry",
					"fresh", strconv.Itoa(fresh),
					"stale", strconv.Itoa(len(c.agents)-fresh),
					"headroom_w", strconv.FormatFloat(float64(c.node.Headroom()), 'f', 0, 64))
			}
		}
	}
	c.node.Observe(now)
}

func (c *Controller) coordinates() bool {
	return c.mode == ModeGlobal || c.mode == ModePriorityAware || c.mode == ModePostpone
}

// sample refreshes the telemetry cache from every readable agent. On the
// fault-free path it copies straight from the agent's version-cached
// snapshot and skips even the copy when the cached entry already reflects
// the rack's state at this exact time and version — which makes the second
// sample of a tick nearly free for every rack the controller did not touch.
func (c *Controller) sample(now time.Duration) {
	anyInj := false
	for i, a := range c.agents {
		if a.inj == nil {
			v := a.rack.Version()
			if c.telOK[i] && c.telVer[i] == v && c.tel[i].Taken == now {
				continue
			}
			a.refresh(now)
			c.tel[i] = a.last
			c.telVer[i] = v
			if !c.telOK[i] {
				c.telOK[i] = true
				c.telOKCount++
			}
			continue
		}
		anyInj = true
		if s, ok := a.Sample(now); ok {
			c.tel[i] = s
			if !c.telOK[i] {
				c.telOK[i] = true
				c.telOKCount++
			}
		}
	}
	c.anyInj = anyInj
}

// fresh reports whether agent i's cached telemetry is usable as-is.
func (c *Controller) fresh(i int, now time.Duration) bool {
	if !c.telOK[i] {
		return false
	}
	return c.staleAfter <= 0 || now-c.tel[i].Taken <= c.staleAfter
}

// views returns the controller's working snapshot of every rack. Fresh
// telemetry is used as-is; stale or missing telemetry is handled
// conservatively: the rack is assumed energized and drawing worst-case
// recharge power on top of its last known server load — or the full rack
// rating when no read has ever completed — so the controller over-protects
// rather than under-protects the breaker.
// The returned slice is read-only and valid until the next sample or views
// call: when every entry is fresh it aliases the telemetry cache itself.
func (c *Controller) views(now time.Duration) []Snapshot {
	if c.staleAfter <= 0 && c.telOKCount == len(c.agents) {
		// No freshness bound and every rack has been read: the working view
		// IS the telemetry cache — no per-rack copying.
		return c.tel
	}
	for i := range c.agents {
		s := c.tel[i]
		if c.fresh(i, now) {
			c.viewBuf[i] = s
			continue
		}
		c.metrics.StaleTelemetry++
		c.cStale.Inc()
		if !c.telOK[i] {
			r := c.agents[i].Rack()
			s.Name = r.Name()
			s.Priority = r.Priority()
			s.Demand = rack.MaxITLoad
			s.ITLoad = rack.MaxITLoad
		}
		s.InputUp = true
		s.Charging = true
		s.Setpoint = c.cfg.Surface.MaxCurrent()
		s.Recharge = units.Power(float64(s.Setpoint) * c.cfg.WattsPerAmp)
		c.viewBuf[i] = s
	}
	return c.viewBuf
}

// sendOverride issues a charging-current override to agent idx and, with
// retries enabled, tracks it until telemetry confirms the setpoint. A newer
// override for the same agent supersedes the pending one. The planned current
// is clamped to the hardware's settable range up front so confirmation
// compares telemetry against the value the charger can actually report.
func (c *Controller) sendOverride(now time.Duration, idx int, want units.Current) bool {
	c.mutated = true
	want = charger.ClampOverride(want)
	delivered := c.agents[idx].Override(now, want)
	c.metrics.OverridesIssued++
	c.cOverrides.Inc()
	if c.sink != nil {
		c.sink.Event(now, c.comp, "override",
			"rack", c.agents[idx].Rack().Name(), "amps", strconv.Itoa(int(want)))
	}
	if c.retry.enabled() {
		if old := c.pending[idx]; old != nil && old.ev != nil && c.engine != nil {
			c.engine.Cancel(old.ev)
		}
		p := &pendingOverride{want: want, attempts: 1, issuedAt: now}
		c.pending[idx] = p
		c.armPending(now, idx, p)
	}
	return delivered
}

func (c *Controller) armPending(now time.Duration, idx int, p *pendingOverride) {
	wait := c.retry.attemptTimeout(p.attempts)
	if c.engine != nil {
		p.ev = c.engine.ScheduleAfter(wait, "retry:"+c.agents[idx].Rack().Name(), func(at time.Duration) {
			c.checkPendingOne(at, idx, p)
		})
		return
	}
	p.due = now + wait
}

// checkPending scans tick-driven pending overrides (no engine attached).
func (c *Controller) checkPending(now time.Duration) {
	if len(c.pending) == 0 {
		return
	}
	for idx := range c.agents { // index order: deterministic injector draws
		if p := c.pending[idx]; p != nil && now >= p.due {
			c.checkPendingOne(now, idx, p)
		}
	}
}

// checkPendingOne confirms or retransmits one pending override. The
// confirmation source is telemetry taken after the command had time to
// settle; a rack that stopped charging resolves the override as moot.
func (c *Controller) checkPendingOne(now time.Duration, idx int, p *pendingOverride) {
	if c.down || c.pending[idx] != p {
		return // controller crashed or the override was superseded
	}
	if c.telOK[idx] {
		s := c.tel[idx]
		if s.Taken > p.issuedAt+c.agents[idx].Latency() && (!s.Charging || s.Setpoint == p.want) {
			delete(c.pending, idx)
			c.cConfirms.Inc()
			wait := (now - p.issuedAt).Seconds()
			c.hConfirm.Observe(wait)
			if c.sink != nil {
				c.sink.Event(now, c.comp, "confirm",
					"rack", c.agents[idx].Rack().Name(),
					"wait_s", strconv.FormatFloat(wait, 'f', 1, 64))
			}
			return
		}
	}
	if p.attempts >= c.retry.maxAttempts() {
		delete(c.pending, idx)
		c.metrics.AbandonedOverrides++
		c.cAbandons.Inc()
		if c.sink != nil {
			c.sink.Event(now, c.comp, "abandon",
				"rack", c.agents[idx].Rack().Name())
		}
		return
	}
	p.attempts++
	c.metrics.Retries++
	c.cRetries.Inc()
	if c.sink != nil {
		c.sink.Event(now, c.comp, "retry",
			"rack", c.agents[idx].Rack().Name(), "attempt", strconv.Itoa(p.attempts))
	}
	c.mutated = true
	c.agents[idx].Override(now, p.want)
	p.issuedAt = now
	c.armPending(now, idx, p)
}

// detectChargingStart finds racks whose batteries began recharging since the
// last tick — judged from fresh telemetry only — and, in a coordinating
// mode, plans and applies their charging currents using the breaker's
// available power.
func (c *Controller) detectChargingStart(now time.Duration) {
	var freshStarts []core.RackInfo
	for i := range c.agents {
		if !c.fresh(i, now) {
			continue
		}
		s := &c.tel[i]
		if s.Charging && !c.wasCharging[i] {
			freshStarts = append(freshStarts, core.RackInfo{ID: i, Name: s.Name, Priority: s.Priority, DOD: s.DOD})
		}
		c.wasCharging[i] = s.Charging
	}
	if len(freshStarts) == 0 || !c.coordinates() {
		return
	}
	deferred := c.grid != nil && c.grid.DeferCharging(now)
	if c.stormQ != nil && (deferred || len(freshStarts) >= c.stormQ.Config().MinRacks || c.stormQ.Len() > 0) {
		// Recharge storm (or a queue already draining, or the grid policy
		// deferring while price/carbon is over threshold): pause the fresh
		// starts into the admission queue instead of planning — and flooring
		// — them all at once. Pause rides the direct server-management path,
		// like capping, so the correlated spike ends within this tick.
		if len(freshStarts) >= c.stormQ.Config().MinRacks {
			c.stormQ.NoteStorm(now)
		}
		if c.sink != nil {
			c.sink.Event(now, c.comp, "storm-pause",
				"starts", strconv.Itoa(len(freshStarts)),
				"deferred", strconv.FormatBool(deferred))
		}
		c.mutated = true
		for _, ri := range freshStarts {
			r := c.agents[ri.ID].Rack()
			r.Postpone()
			c.wasCharging[ri.ID] = false
			// A re-outage of an already-queued rack supersedes its stale
			// entry with the fresh DOD.
			c.stormQ.Remove(ri.Name)
			c.stormQ.Enqueue(now, storm.Request{Name: ri.Name, Priority: ri.Priority, DOD: r.PendingDOD(), Since: r.ChargeStart()})
		}
		return
	}
	// Available power for recharge: the effective feed limit's headroom over
	// the IT load (recharge power excluded — the plan decides it).
	available := c.effLimit(now) - c.itLoad(c.views(now))
	cfg := c.cfg
	var plan []core.Assignment
	switch c.mode {
	case ModeGlobal:
		plan = core.PlanGlobal(available, freshStarts, cfg)
	case ModePostpone:
		cfg.AllowPostpone = true
		plan = core.PlanPriorityAware(available, freshStarts, cfg)
	default:
		plan = core.PlanPriorityAware(available, freshStarts, cfg)
	}
	c.metrics.PlansComputed++
	c.cPlans.Inc()
	if c.sink != nil {
		c.sink.Event(now, c.comp, "plan",
			"starts", strconv.Itoa(len(freshStarts)),
			"available_w", strconv.FormatFloat(float64(available), 'f', 0, 64))
	}
	for _, asg := range plan {
		if asg.DOD <= 0 {
			continue
		}
		r := c.agents[asg.ID].Rack()
		if asg.Postponed {
			// Stop the charge entirely; the rack records the deficit so a
			// restarted controller can rediscover it.
			c.mutated = true
			r.Postpone()
			c.postponed[r] = asg.RackInfo
			c.wasCharging[asg.ID] = false
			continue
		}
		c.sendOverride(now, asg.ID, asg.Current)
	}
}

// restartPostponed resumes postponed charges, highest priority and lowest
// DOD first, while headroom allows their floor power (§IV-A future work,
// ModePostpone only).
func (c *Controller) restartPostponed() {
	if c.mode != ModePostpone || len(c.postponed) == 0 {
		return
	}
	floor := units.Power(float64(c.cfg.Surface.MinCurrent()) * c.cfg.WattsPerAmp)
	var waiting []core.RackInfo
	byID := make(map[int]*rack.Rack)
	for r, ri := range c.postponed {
		waiting = append(waiting, ri)
		byID[ri.ID] = r
	}
	sort.Slice(waiting, func(i, j int) bool {
		a, b := waiting[i], waiting[j]
		if a.Priority != b.Priority {
			return a.Priority < b.Priority
		}
		if a.DOD != b.DOD {
			return a.DOD < b.DOD
		}
		return a.ID < b.ID
	})
	headroom := c.node.Headroom()
	for _, ri := range waiting {
		if headroom < floor {
			break
		}
		r := byID[ri.ID]
		want, _ := c.cfg.SLACurrent(ri.Priority, ri.DOD)
		grant := c.cfg.Surface.MinCurrent()
		wantPower := units.Power(float64(want) * c.cfg.WattsPerAmp)
		if wantPower <= headroom {
			grant = want
		}
		r.ResumeCharge(grant)
		c.mutated = true
		headroom -= units.Power(float64(grant) * c.cfg.WattsPerAmp)
		c.wasCharging[ri.ID] = true
		c.metrics.OverridesIssued++
		c.cOverrides.Inc()
		if c.sink != nil {
			c.sink.Event(c.lastTick, c.comp, "resume",
				"rack", ri.Name, "amps", strconv.Itoa(int(grant)))
		}
		delete(c.postponed, r)
	}
}

// StormQueue returns the controller's storm admission queue, nil when storm
// admission is not armed (guards attach to it; tests and scenarios read its
// metrics).
func (c *Controller) StormQueue() *storm.Queue { return c.stormQ }

// admitStorm grants the next admission wave from the storm queue under the
// breaker's live headroom (net of the configured reserve). Admission grants
// ride the direct server-management path, like capping and postponed-charge
// restarts, and count as controller contact for the racks' watchdogs.
func (c *Controller) admitStorm(now time.Duration) {
	if c.stormQ == nil || c.stormQ.Len() == 0 {
		return
	}
	if c.grid != nil && c.grid.DeferCharging(now) {
		// Price/carbon over threshold (or a droop in force): hold the wave.
		// The grid policy's MaxDefer valve bounds how long this can last.
		return
	}
	// Headroom and reserve derive from the effective feed limit, so a
	// shrunken interconnection cap shrinks every admission wave with it.
	limit := c.effLimit(now)
	budget := limit - c.node.Power() - c.stormQ.Config().Margin(limit)
	for _, g := range c.stormQ.Admit(now, budget, c.cfg) {
		idx, ok := c.byName[g.Name]
		if !ok {
			continue
		}
		r := c.agents[idx].Rack()
		r.ControllerContact(now)
		r.ResumeCharge(g.Current)
		c.mutated = true
		c.wasCharging[idx] = true
		c.metrics.OverridesIssued++
		c.cOverrides.Inc()
	}
}

// itLoad sums the (capped) server power of the racks under this controller.
func (c *Controller) itLoad(views []Snapshot) units.Power {
	var total units.Power
	for i := range views {
		if s := &views[i]; s.InputUp {
			total += s.ITLoad
		}
	}
	return total
}

// protect handles an instantaneous overload: battery throttling as the first
// line of defense (coordinating modes), then priority-aware server capping
// as the last resort. When the breaker is not overloaded, caps are released.
func (c *Controller) protect(now time.Duration, dt time.Duration) {
	views := c.views(now)
	excess := -c.headroomUncapped(now, views)
	if excess <= 0 {
		c.releaseCaps()
		return
	}
	switch c.mode {
	case ModePriorityAware, ModePostpone:
		excess -= c.throttleBatteries(now, views, excess)
	case ModeGlobal:
		excess -= c.lowerGlobalRate(now, views)
	}
	if excess < 0 {
		excess = 0
	}
	c.applyCaps(views, excess, dt)
}

// headroomUncapped is the effective limit minus the draw the breaker would
// see with all caps released: capping decisions are recomputed from scratch
// each tick.
func (c *Controller) headroomUncapped(now time.Duration, views []Snapshot) units.Power {
	var uncapped units.Power
	for i := range views {
		s := &views[i]
		if !s.InputUp {
			continue
		}
		uncapped += s.Demand + s.Recharge
	}
	// Include draw from loads not managed by this controller (none in the
	// standard topologies, but a child breaker may have foreign loads).
	return c.effLimit(now) - uncapped
}

// effLimit is the feed limit planning and protection enforce at now: the
// breaker limit, tightened to the interconnection cap when the grid signal
// plane is attached.
func (c *Controller) effLimit(now time.Duration) units.Power {
	if c.grid != nil {
		return c.grid.EffectiveLimit(now)
	}
	return c.node.Limit()
}

// throttleBatteries sets charging currents to the minimum in reverse order
// until the projected recovery covers excess; it returns the projected
// recovered power.
func (c *Controller) throttleBatteries(now time.Duration, views []Snapshot, excess units.Power) units.Power {
	var active []core.ActiveCharge
	for i := range views {
		if s := &views[i]; s.InputUp && s.Charging {
			active = append(active, core.ActiveCharge{
				RackInfo: core.RackInfo{ID: i, Name: s.Name, Priority: s.Priority, DOD: s.DOD},
				Current:  s.Setpoint,
			})
		}
	}
	ids := core.ThrottleToMinimum(excess, active, c.cfg)
	if len(ids) == 0 {
		return 0
	}
	c.metrics.ThrottleEvents++
	c.cThrottles.Inc()
	if c.sink != nil {
		c.sink.Event(now, c.comp, "throttle",
			"sheds", strconv.Itoa(len(ids)),
			"excess_w", strconv.FormatFloat(float64(excess), 'f', 0, 64))
	}
	min := c.cfg.Surface.MinCurrent()
	var recovered units.Power
	current := make(map[int]units.Current, len(active))
	for _, ac := range active {
		current[ac.ID] = ac.Current
	}
	for _, id := range ids {
		delivered := c.sendOverride(now, id, min)
		// Only instantly-settling, actually-delivered overrides against
		// fresh telemetry count against this tick's excess: a command still
		// in its settling window (or lost, or aimed at a rack whose
		// setpoint is only assumed) has not recovered anything yet, and
		// Dynamo caps on the overload it measures now (releasing the caps
		// once the throttle lands).
		if delivered && c.agents[id].Latency() <= 0 && c.fresh(id, now) {
			recovered += units.Power(float64(current[id]-min) * c.cfg.WattsPerAmp)
		}
	}
	return recovered
}

// lowerGlobalRate recomputes the uniform rate from present available power
// and applies it to every charging rack (the global baseline's only
// overload response short of capping). It returns the projected recovery.
func (c *Controller) lowerGlobalRate(now time.Duration, views []Snapshot) units.Power {
	var charging []core.RackInfo
	var before units.Power
	for i := range views {
		if s := &views[i]; s.InputUp && s.Charging {
			charging = append(charging, core.RackInfo{ID: i, Name: s.Name, Priority: s.Priority, DOD: s.DOD})
			before += s.Recharge
		}
	}
	if len(charging) == 0 {
		return 0
	}
	available := c.effLimit(now) - c.itLoad(views)
	plan := core.PlanGlobal(available, charging, c.cfg)
	var after units.Power
	for _, asg := range plan {
		c.sendOverride(now, asg.ID, asg.Current)
		after += asg.RechargePower(c.cfg.WattsPerAmp)
	}
	c.metrics.ThrottleEvents++
	c.cThrottles.Inc()
	if c.sink != nil {
		c.sink.Event(now, c.comp, "throttle",
			"sheds", strconv.Itoa(len(plan)),
			"mode", "global")
	}
	if after >= before {
		return 0
	}
	return before - after
}

// applyCaps distributes a required server power reduction across racks,
// lowest priority first (Dynamo caps "according to priority of services
// running on those servers"), and records the Table III metrics. Capping
// rides Dynamo's server-management path, not the TOR agent's charger
// command path, so caps apply directly even when the agent link is faulty.
func (c *Controller) applyCaps(views []Snapshot, needed units.Power, dt time.Duration) {
	order := make([]int, 0, len(views))
	for i := range views {
		if views[i].InputUp {
			order = append(order, i)
		}
	}
	sort.SliceStable(order, func(i, j int) bool {
		return views[order[i]].Priority > views[order[j]].Priority
	})
	source := c.node.Name()
	var applied units.Power
	remaining := needed
	for _, i := range order {
		r := c.agents[i].Rack()
		if remaining <= 0 {
			r.Uncap(source)
			continue
		}
		demand := views[i].Demand
		cut := demand
		if cut > remaining {
			cut = remaining
		}
		r.Cap(source, demand-cut)
		applied += cut
		remaining -= cut
	}
	if applied > 0 && c.sink != nil {
		c.sink.Event(c.lastTick, c.comp, "cap",
			"applied_w", strconv.FormatFloat(float64(applied), 'f', 0, 64))
	}
	if applied > c.metrics.MaxCapping {
		c.metrics.MaxCapping = applied
		if it := c.itLoad(views) + applied; it > 0 {
			c.metrics.MaxCappingFraction = units.Fraction(float64(applied) / float64(it))
		}
	}
	if dt > 0 {
		c.metrics.CappedEnergy += units.EnergyOver(applied, dt)
	}
}

// releaseCaps removes this controller's server power caps (headroom has
// returned); caps from other controllers are untouched.
func (c *Controller) releaseCaps() {
	for _, a := range c.agents {
		a.Rack().Uncap(c.node.Name())
	}
}
