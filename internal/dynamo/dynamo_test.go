package dynamo

import (
	"fmt"
	"math"
	"testing"
	"time"

	"coordcharge/internal/battery"
	"coordcharge/internal/charger"
	"coordcharge/internal/core"
	"coordcharge/internal/power"
	"coordcharge/internal/rack"
	"coordcharge/internal/sim"
	"coordcharge/internal/units"
)

// row builds n racks with the given priorities under a single RPP and
// returns the RPP node and racks.
func row(t *testing.T, prios []rack.Priority, pol charger.Policy) (*power.Node, []*rack.Rack) {
	t.Helper()
	rpp := power.NewNode("rpp", power.LevelRPP, power.DefaultRPPLimit)
	racks := make([]*rack.Rack, len(prios))
	for i, p := range prios {
		racks[i] = rack.New(fmt.Sprintf("rack%d", i), p, pol, battery.Fig5Surface())
		rpp.AttachLoad(racks[i])
	}
	return rpp, racks
}

func agentsFor(racks []*rack.Rack) []*Agent {
	out := make([]*Agent, len(racks))
	for i, r := range racks {
		out[i] = NewAgent(r, nil, 0)
	}
	return out
}

// transition runs an open transition of the given length on all racks.
func transition(racks []*rack.Rack, load units.Power, length time.Duration) {
	for _, r := range racks {
		r.SetDemand(load)
		r.LoseInput(0)
		r.Step(length, length)
		r.RestoreInput(length)
	}
}

func TestModeString(t *testing.T) {
	want := map[Mode]string{ModeNone: "none", ModeGlobal: "global", ModePriorityAware: "priority-aware", ModePostpone: "postpone", Mode(9): "Mode(9)"}
	for m, w := range want {
		if got := m.String(); got != w {
			t.Errorf("Mode(%d).String() = %q, want %q", int(m), got, w)
		}
	}
}

func TestAgentReadAndImmediateOverride(t *testing.T) {
	_, racks := row(t, []rack.Priority{rack.P1}, charger.Variable{})
	a := NewAgent(racks[0], nil, 0)
	transition(racks, 12600*units.Watt, 45*time.Second)
	if got := a.ReadRecharge(); math.Abs(float64(got)-760) > 1 {
		t.Errorf("recharge read = %v, want 760 W (2 A)", got)
	}
	if got, want := a.ReadPower(), racks[0].Power(); got != want {
		t.Errorf("power read = %v, want %v", got, want)
	}
	a.Override(45*time.Second, 1)
	if got := racks[0].Pack().Setpoint(); got != 1 {
		t.Errorf("setpoint after immediate override = %v, want 1 A", got)
	}
}

// Fig 11: an override takes effect only after the command-settling latency.
func TestAgentLatentOverride(t *testing.T) {
	eng := sim.NewEngine()
	_, racks := row(t, []rack.Priority{rack.P1}, charger.Variable{})
	a := NewAgent(racks[0], eng, 20*time.Second)
	transition(racks, 12600*units.Watt, 45*time.Second)
	a.Override(0, 1)
	if got := racks[0].Pack().Setpoint(); got != 2 {
		t.Errorf("setpoint changed before latency elapsed: %v", got)
	}
	eng.Run(19 * time.Second)
	if got := racks[0].Pack().Setpoint(); got != 2 {
		t.Errorf("setpoint changed at 19 s: %v", got)
	}
	eng.Run(20 * time.Second)
	if got := racks[0].Pack().Setpoint(); got != 1 {
		t.Errorf("setpoint after latency = %v, want 1 A", got)
	}
}

func TestAgentLatencyWithoutEnginePanics(t *testing.T) {
	_, racks := row(t, []rack.Priority{rack.P1}, charger.Variable{})
	defer func() {
		if recover() == nil {
			t.Error("no panic for latency without engine")
		}
	}()
	NewAgent(racks[0], nil, time.Second)
}

// The Fig 10 prototype: 9 P1 + 5 P2 + 3 P3 racks, 5 s transition, <5% DOD,
// unconstrained RPP. The leaf controller overrides P1 to 2 A and P2/P3 to 1 A.
func TestFig10LeafControllerPlan(t *testing.T) {
	prios := make([]rack.Priority, 0, 17)
	for i := 0; i < 9; i++ {
		prios = append(prios, rack.P1)
	}
	for i := 0; i < 5; i++ {
		prios = append(prios, rack.P2)
	}
	for i := 0; i < 3; i++ {
		prios = append(prios, rack.P3)
	}
	rpp, racks := row(t, prios, charger.Variable{})
	ctl := NewController(rpp, agentsFor(racks), ModePriorityAware, core.DefaultConfig(), true)
	transition(racks, 9000*units.Watt, 5*time.Second) // ~4% DOD
	ctl.Tick(5 * time.Second)
	for i, r := range racks {
		want := units.Current(1)
		if r.Priority() == rack.P1 {
			want = 2
		}
		if got := r.Pack().Setpoint(); got != want {
			t.Errorf("rack %d (%v) setpoint = %v, want %v", i, r.Priority(), got, want)
		}
	}
	m := ctl.Metrics()
	if m.PlansComputed != 1 {
		t.Errorf("plans computed = %d, want 1", m.PlansComputed)
	}
	if m.OverridesIssued != 17 {
		t.Errorf("overrides issued = %d, want 17", m.OverridesIssued)
	}
	if m.MaxCapping != 0 {
		t.Errorf("capping = %v, want 0 (unconstrained)", m.MaxCapping)
	}
}

func TestControllerPlansOnceNotEveryTick(t *testing.T) {
	rpp, racks := row(t, []rack.Priority{rack.P1, rack.P2}, charger.Variable{})
	ctl := NewController(rpp, agentsFor(racks), ModePriorityAware, core.DefaultConfig(), true)
	transition(racks, 9000*units.Watt, 5*time.Second)
	for i := 1; i <= 5; i++ {
		ctl.Tick(5*time.Second + time.Duration(i)*3*time.Second)
	}
	if got := ctl.Metrics().PlansComputed; got != 1 {
		t.Errorf("plans computed = %d, want 1 (no replanning while charging)", got)
	}
}

// Overload during charging: battery throttling is the first line of defense
// (lowest priority, highest discharge first); no server capping if
// throttling suffices.
func TestThrottleBeforeCapping(t *testing.T) {
	rpp, racks := row(t, []rack.Priority{rack.P1, rack.P3}, charger.Original{})
	// Limit chosen so that IT + both racks charging at 5 A overloads, but
	// throttling the P3 rack to 1 A recovers enough.
	rpp.SetLimit(22*units.Kilowatt + 1900 + 1520)
	ctl := NewController(rpp, agentsFor(racks), ModePriorityAware, core.DefaultConfig(), true)
	transition(racks, 11000*units.Watt, 90*time.Second) // deep discharge
	// Suppress the initial coordinated plan by pretending it already ran:
	// both racks charge at the local original-charger 5 A (the overload case
	// arises when the plan's assumptions are violated; here we drive the
	// protect path directly).
	ctl.wasCharging[0] = true
	ctl.wasCharging[1] = true
	ctl.Tick(91 * time.Second)
	if got := racks[1].Pack().Setpoint(); got != 1 {
		t.Errorf("P3 rack setpoint = %v, want throttled to 1 A", got)
	}
	if got := racks[0].Pack().Setpoint(); got != 5 {
		t.Errorf("P1 rack setpoint = %v, want untouched 5 A", got)
	}
	if got := ctl.Metrics().MaxCapping; got != 0 {
		t.Errorf("capping = %v, want 0 (throttling sufficed)", got)
	}
	if ctl.Metrics().ThrottleEvents == 0 {
		t.Error("no throttle event recorded")
	}
}

// When even minimum-rate charging overloads the breaker, the controller caps
// servers — lowest priority first.
func TestCappingAsLastResort(t *testing.T) {
	rpp, racks := row(t, []rack.Priority{rack.P1, rack.P3}, charger.Variable{})
	transition(racks, 11000*units.Watt, 90*time.Second)
	// Both racks charging at minimum draw 2×380 W; leave less than that.
	rpp.SetLimit(22*units.Kilowatt + 500)
	ctl := NewController(rpp, agentsFor(racks), ModePriorityAware, core.DefaultConfig(), true)
	ctl.Tick(91 * time.Second)
	m := ctl.Metrics()
	if m.MaxCapping <= 0 {
		t.Fatalf("no capping despite overload at minimum rate")
	}
	// The P3 rack absorbs the cut first.
	if racks[1].CappedPower() == 0 {
		t.Error("P3 rack not capped first")
	}
	if racks[0].CappedPower() != 0 {
		t.Error("P1 rack capped although P3 had capacity to cut")
	}
}

func TestCapsReleasedWhenHeadroomReturns(t *testing.T) {
	rpp, racks := row(t, []rack.Priority{rack.P2}, charger.Variable{})
	transition(racks, 11000*units.Watt, 90*time.Second)
	rpp.SetLimit(11 * units.Kilowatt) // recharge floor overloads
	ctl := NewController(rpp, agentsFor(racks), ModePriorityAware, core.DefaultConfig(), true)
	ctl.Tick(91 * time.Second)
	if racks[0].CappedPower() == 0 {
		t.Fatal("expected capping under tight limit")
	}
	rpp.SetLimit(30 * units.Kilowatt)
	ctl.Tick(94 * time.Second)
	if got := racks[0].CappedPower(); got != 0 {
		t.Errorf("cap not released after headroom returned: %v", got)
	}
}

func TestGlobalModeUniformRate(t *testing.T) {
	rpp, racks := row(t, []rack.Priority{rack.P1, rack.P2, rack.P3}, charger.Variable{})
	ctl := NewController(rpp, agentsFor(racks), ModeGlobal, core.DefaultConfig(), true)
	transition(racks, 12600*units.Watt, 90*time.Second) // 100% DOD
	ctl.Tick(91 * time.Second)
	// Unconstrained: everyone at 5 A regardless of priority.
	for i, r := range racks {
		if got := r.Pack().Setpoint(); got != 5 {
			t.Errorf("rack %d setpoint = %v, want uniform 5 A", i, got)
		}
	}
}

func TestGlobalModeLowersRateOnOverload(t *testing.T) {
	rpp, racks := row(t, []rack.Priority{rack.P1, rack.P2, rack.P3}, charger.Variable{})
	transition(racks, 11000*units.Watt, 90*time.Second)
	// Room for IT plus ~2 A per rack.
	rpp.SetLimit(33*units.Kilowatt + 3*2*380)
	ctl := NewController(rpp, agentsFor(racks), ModeGlobal, core.DefaultConfig(), true)
	ctl.Tick(91 * time.Second)
	for i, r := range racks {
		if got := r.Pack().Setpoint(); got != 2 {
			t.Errorf("rack %d setpoint = %v, want uniform 2 A", i, got)
		}
	}
	if got := ctl.Metrics().MaxCapping; got != 0 {
		t.Errorf("global mode capped %v despite fitting at 2 A", got)
	}
}

func TestPostponeModeDefersAndRestarts(t *testing.T) {
	rpp, racks := row(t, []rack.Priority{rack.P1, rack.P3}, charger.Variable{})
	transition(racks, 11000*units.Watt, 90*time.Second)
	// Room for IT plus one rack's worth of charging only.
	rpp.SetLimit(22*units.Kilowatt + 1900)
	ctl := NewController(rpp, agentsFor(racks), ModePostpone, core.DefaultConfig(), true)
	ctl.Tick(91 * time.Second)
	if !racks[0].Charging() {
		t.Fatal("P1 rack not charging")
	}
	if racks[1].Charging() {
		t.Fatal("P3 rack charging despite postponement")
	}
	// Free headroom: the postponed P3 restarts.
	rpp.SetLimit(40 * units.Kilowatt)
	ctl.Tick(94 * time.Second)
	if !racks[1].Charging() {
		t.Error("postponed P3 rack did not restart when headroom returned")
	}
}

func TestBuildHierarchy(t *testing.T) {
	loads := make([]power.Load, 30)
	racks := make([]*rack.Rack, 30)
	for i := range racks {
		racks[i] = rack.New(fmt.Sprintf("r%d", i), rack.Priority(1+i%3), charger.Variable{}, battery.Fig5Surface())
		loads[i] = racks[i]
	}
	msb, err := power.Build(power.Spec{Name: "m"}, loads)
	if err != nil {
		t.Fatal(err)
	}
	h, err := BuildHierarchy(msb, ModePriorityAware, core.DefaultConfig(), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	var nodes int
	msb.Walk(func(*power.Node) { nodes++ })
	if got := len(h.Controllers()); got != nodes {
		t.Errorf("controllers = %d, want one per breaker (%d)", got, nodes)
	}
	// Bottom-up order: RPP controllers precede SBs precede the MSB.
	var lastLevel = power.LevelRPP
	for _, c := range h.Controllers() {
		if c.Node().Level() > lastLevel {
			t.Fatal("controllers not in bottom-up order")
		}
		lastLevel = c.Node().Level()
	}
	if h.Controller(msb) == nil {
		t.Error("no controller for the MSB")
	}
	if h.Agent(racks[0]) == nil {
		t.Error("no agent for rack 0")
	}
}

func TestBuildHierarchyRejectsForeignLoads(t *testing.T) {
	n := power.NewNode("rpp", power.LevelRPP, power.DefaultRPPLimit)
	n.AttachLoad(fakeLoad{})
	if _, err := BuildHierarchy(n, ModeNone, core.DefaultConfig(), nil, 0); err == nil {
		t.Error("BuildHierarchy accepted a non-rack load")
	}
}

type fakeLoad struct{}

func (fakeLoad) Name() string       { return "fake" }
func (fakeLoad) Power() units.Power { return 0 }

// An MSB-level constraint must not be undone by unconstrained RPP
// controllers releasing caps (per-source caps).
func TestHierarchyMultiLevelCapping(t *testing.T) {
	loads := make([]power.Load, 8)
	racks := make([]*rack.Rack, 8)
	for i := range racks {
		racks[i] = rack.New(fmt.Sprintf("r%d", i), rack.P3, charger.Variable{}, battery.Fig5Surface())
		loads[i] = racks[i]
	}
	msb, err := power.Build(power.Spec{Name: "m", RacksPerRPP: 4, SBCount: 2}, loads)
	if err != nil {
		t.Fatal(err)
	}
	h, err := BuildHierarchy(msb, ModeNone, core.DefaultConfig(), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range racks {
		r.SetDemand(12 * units.Kilowatt)
	}
	msb.SetLimit(90 * units.Kilowatt) // 96 kW demand → 6 kW must be capped
	for tick := 1; tick <= 3; tick++ {
		h.Tick(time.Duration(tick) * 3 * time.Second)
	}
	var capped units.Power
	for _, r := range racks {
		capped += r.CappedPower()
	}
	if capped < 5900*units.Watt || capped > 6100*units.Watt {
		t.Errorf("total capped = %v, want ~6 kW", capped)
	}
	if got := msb.Power(); got > 90*units.Kilowatt+1 {
		t.Errorf("MSB still overloaded: %v", got)
	}
}

func TestTotalMetricsAggregation(t *testing.T) {
	loads := make([]power.Load, 4)
	racks := make([]*rack.Rack, 4)
	for i := range racks {
		racks[i] = rack.New(fmt.Sprintf("r%d", i), rack.P2, charger.Variable{}, battery.Fig5Surface())
		loads[i] = racks[i]
	}
	msb, _ := power.Build(power.Spec{Name: "m", RacksPerRPP: 2, SBCount: 2}, loads)
	h, _ := BuildHierarchy(msb, ModePriorityAware, core.DefaultConfig(), nil, 0)
	transition(racks, 9000*units.Watt, 10*time.Second)
	h.Tick(11 * time.Second)
	m := h.TotalMetrics()
	if m.PlansComputed == 0 {
		t.Error("no plans recorded in aggregate metrics")
	}
	if m.OverridesIssued == 0 {
		t.Error("no overrides recorded in aggregate metrics")
	}
}
