package dynamo

import (
	"fmt"
	"sort"
	"time"

	"coordcharge/internal/core"
	"coordcharge/internal/power"
	"coordcharge/internal/rack"
	"coordcharge/internal/sim"
)

// Hierarchy mirrors the power tree with one controller per breaker, as the
// production deployment does: leaf controllers on every RPP and upper-level
// controllers protecting SBs and the MSB (paper §IV-B). Controllers tick
// bottom-up so that upper levels observe the corrective actions of the
// levels below them within the same cycle.
type Hierarchy struct {
	controllers []*Controller
	byNode      map[*power.Node]*Controller
	agents      map[*rack.Rack]*Agent
}

// BuildHierarchy walks the power tree rooted at root and creates a
// controller for every breaker. Every load in the tree must be a *rack.Rack.
// engine may be nil when latency is zero.
func BuildHierarchy(root *power.Node, mode Mode, cfg core.Config, engine *sim.Engine, latency time.Duration) (*Hierarchy, error) {
	h := &Hierarchy{
		byNode: make(map[*power.Node]*Controller),
		agents: make(map[*rack.Rack]*Agent),
	}
	var nodes []*power.Node
	root.Walk(func(n *power.Node) { nodes = append(nodes, n) })
	// Bottom-up: deepest level first, stable within a level.
	sort.SliceStable(nodes, func(i, j int) bool { return nodes[i].Level() > nodes[j].Level() })
	for _, n := range nodes {
		var agents []*Agent
		for _, l := range n.RackLoads() {
			r, ok := l.(*rack.Rack)
			if !ok {
				return nil, fmt.Errorf("dynamo: load %s under %s is %T, want *rack.Rack", l.Name(), n.Name(), l)
			}
			a := h.agents[r]
			if a == nil {
				a = NewAgent(r, engine, latency)
				h.agents[r] = a
			}
			agents = append(agents, a)
		}
		// The root controller computes initial plans: it protects the
		// breaker where the binding power constraint lives in the paper's
		// experiments; lower levels monitor and protect.
		ctl := NewController(n, agents, mode, cfg, n == root)
		h.controllers = append(h.controllers, ctl)
		h.byNode[n] = ctl
	}
	return h, nil
}

// Tick runs one monitoring cycle on every controller, bottom-up.
func (h *Hierarchy) Tick(now time.Duration) {
	for _, c := range h.controllers {
		c.Tick(now)
	}
}

// Controller returns the controller protecting node, or nil.
func (h *Hierarchy) Controller(node *power.Node) *Controller { return h.byNode[node] }

// Controllers returns all controllers in tick (bottom-up) order.
func (h *Hierarchy) Controllers() []*Controller { return h.controllers }

// Agent returns the agent for a rack, or nil.
func (h *Hierarchy) Agent(r *rack.Rack) *Agent { return h.agents[r] }

// TotalMetrics aggregates metrics across controllers: counters sum, capping
// maxima take the hierarchy-wide maximum.
func (h *Hierarchy) TotalMetrics() Metrics {
	var m Metrics
	for _, c := range h.controllers {
		cm := c.Metrics()
		if cm.MaxCapping > m.MaxCapping {
			m.MaxCapping = cm.MaxCapping
			m.MaxCappingFraction = cm.MaxCappingFraction
		}
		m.CappedEnergy += cm.CappedEnergy
		m.OverridesIssued += cm.OverridesIssued
		m.ThrottleEvents += cm.ThrottleEvents
		m.PlansComputed += cm.PlansComputed
	}
	return m
}
