package dynamo

import (
	"fmt"
	"sort"
	"time"

	"coordcharge/internal/core"
	"coordcharge/internal/faults"
	"coordcharge/internal/grid"
	"coordcharge/internal/obs"
	"coordcharge/internal/power"
	"coordcharge/internal/rack"
	"coordcharge/internal/sim"
	"coordcharge/internal/storm"
)

// Hierarchy mirrors the power tree with one controller per breaker, as the
// production deployment does: leaf controllers on every RPP and upper-level
// controllers protecting SBs and the MSB (paper §IV-B). Controllers tick
// bottom-up so that upper levels observe the corrective actions of the
// levels below them within the same cycle.
type Hierarchy struct {
	controllers []*Controller
	byNode      map[*power.Node]*Controller
	agents      map[*rack.Rack]*Agent
	guards      []*storm.Guard
}

// HierarchyOptions carries the control plane's wiring and degraded-mode
// knobs for BuildHierarchyOpts.
type HierarchyOptions struct {
	// Engine schedules command settling and retry timeouts. May be nil when
	// Latency is zero (and retries then run on the tick cadence).
	Engine *sim.Engine
	// Latency is the agents' command-settling delay (Fig 11).
	Latency time.Duration
	// Injector, when non-nil, attaches fault injection to every agent and
	// controller in the hierarchy.
	Injector *faults.Injector
	// StaleAfter is the controllers' telemetry freshness bound; zero means
	// telemetry never goes stale.
	StaleAfter time.Duration
	// Retry is the controllers' override retransmission policy; the zero
	// value disables retries.
	Retry RetryPolicy
	// WatchdogTTL, when positive, arms every rack's local fail-safe
	// watchdog with this TTL (safe current from cfg.SafeCurrent()) and has
	// controllers emit per-tick heartbeats to feed it.
	WatchdogTTL time.Duration
	// Storm arms recharge-storm admission control at the planning (root)
	// controller: correlated charging starts are paused and re-admitted in
	// priority-aware waves under measured headroom.
	Storm *storm.Config
	// Guard arms a last-line breaker guard on every node of the hierarchy,
	// shedding charging current (demote → pause, reverse priority) against
	// sustained overdraw before the breaker's TripRule window closes, and
	// capping servers only as a final resort. Guards run even while their
	// controller is crashed. Paused charges are handed to the storm
	// admission queue when Storm is also armed.
	Guard *storm.GuardConfig
	// Obs attaches an observability sink to every controller, guard, and
	// rack fail-safe watchdog in the hierarchy. Nil disables instrumentation.
	Obs *obs.Sink
	// Grid attaches the grid signal plane to the planning (root) controller
	// — planning and admission budgets derive from the effective feed limit
	// (min of breaker limit and interconnection cap) — and clamps the root
	// guard's charge-shedding level to the same cap.
	Grid *grid.Policy
}

// BuildHierarchy walks the power tree rooted at root and creates a
// controller for every breaker. Every load in the tree must be a *rack.Rack.
// engine may be nil when latency is zero.
func BuildHierarchy(root *power.Node, mode Mode, cfg core.Config, engine *sim.Engine, latency time.Duration) (*Hierarchy, error) {
	return BuildHierarchyOpts(root, mode, cfg, HierarchyOptions{Engine: engine, Latency: latency})
}

// BuildHierarchyOpts is BuildHierarchy with fault-injection and
// degraded-mode options.
func BuildHierarchyOpts(root *power.Node, mode Mode, cfg core.Config, opts HierarchyOptions) (*Hierarchy, error) {
	h := &Hierarchy{
		byNode: make(map[*power.Node]*Controller),
		agents: make(map[*rack.Rack]*Agent),
	}
	var nodes []*power.Node
	root.Walk(func(n *power.Node) { nodes = append(nodes, n) })
	// Bottom-up: deepest level first, stable within a level.
	sort.SliceStable(nodes, func(i, j int) bool { return nodes[i].Level() > nodes[j].Level() })
	for _, n := range nodes {
		var agents []*Agent
		for _, l := range n.RackLoads() {
			r, ok := l.(*rack.Rack)
			if !ok {
				return nil, fmt.Errorf("dynamo: load %s under %s is %T, want *rack.Rack", l.Name(), n.Name(), l)
			}
			a := h.agents[r]
			if a == nil {
				a = NewAgent(r, opts.Engine, opts.Latency)
				if opts.Injector != nil {
					a.SetFaults(opts.Injector)
				}
				if opts.WatchdogTTL > 0 {
					r.SetWatchdog(opts.WatchdogTTL, cfg.SafeCurrent())
				}
				if opts.Obs != nil {
					r.SetObs(opts.Obs)
				}
				h.agents[r] = a
			}
			agents = append(agents, a)
		}
		// The root controller computes initial plans: it protects the
		// breaker where the binding power constraint lives in the paper's
		// experiments; lower levels monitor and protect.
		ctl := NewControllerOpts(n, agents, mode, cfg, n == root, ControllerOptions{
			Engine:     opts.Engine,
			Injector:   opts.Injector,
			StaleAfter: opts.StaleAfter,
			Retry:      opts.Retry,
			Heartbeat:  opts.WatchdogTTL > 0,
			Storm:      opts.Storm,
			Obs:        opts.Obs,
			Grid:       opts.Grid,
		})
		h.controllers = append(h.controllers, ctl)
		h.byNode[n] = ctl
	}
	if opts.Guard != nil {
		queue := h.byNode[root].StormQueue()
		for _, n := range nodes {
			var racks []*rack.Rack
			for _, l := range n.RackLoads() {
				racks = append(racks, l.(*rack.Rack))
			}
			g := storm.NewGuard(n, racks, cfg, *opts.Guard)
			if queue != nil {
				g.AttachQueue(queue)
			}
			if opts.Grid != nil && n == root {
				// The interconnection cap constrains the site feed: only
				// the root (MSB) guard sheds against it.
				g.SetCapacity(opts.Grid.CapAt)
			}
			if opts.Obs != nil {
				g.SetObs(opts.Obs)
			}
			h.guards = append(h.guards, g)
		}
	}
	return h, nil
}

// Tick runs one monitoring cycle on every controller, bottom-up, then the
// breaker guards. Guards tick last so they measure the draw the controllers'
// actions left behind, and they run even when their controller is crashed —
// that independence is what makes them a last line.
func (h *Hierarchy) Tick(now time.Duration) {
	for _, c := range h.controllers {
		c.Tick(now)
	}
	for _, g := range h.guards {
		g.Tick(now)
	}
}

// Controller returns the controller protecting node, or nil.
func (h *Hierarchy) Controller(node *power.Node) *Controller { return h.byNode[node] }

// Controllers returns all controllers in tick (bottom-up) order.
func (h *Hierarchy) Controllers() []*Controller { return h.controllers }

// Agent returns the agent for a rack, or nil.
func (h *Hierarchy) Agent(r *rack.Rack) *Agent { return h.agents[r] }

// Guards returns the hierarchy's breaker guards (empty unless armed).
func (h *Hierarchy) Guards() []*storm.Guard { return h.guards }

// StormQueue returns the planning controller's admission queue, nil unless
// storm admission is armed.
func (h *Hierarchy) StormQueue() *storm.Queue {
	for _, c := range h.controllers {
		if q := c.StormQueue(); q != nil {
			return q
		}
	}
	return nil
}

// TotalGuardMetrics aggregates guard counters across the hierarchy; maxima
// take the hierarchy-wide maximum.
func (h *Hierarchy) TotalGuardMetrics() storm.GuardMetrics {
	return storm.TotalGuardMetrics(h.guards)
}

// TotalMetrics aggregates metrics across controllers: counters sum, capping
// maxima take the hierarchy-wide maximum.
func (h *Hierarchy) TotalMetrics() Metrics {
	var m Metrics
	for _, c := range h.controllers {
		cm := c.Metrics()
		if cm.MaxCapping > m.MaxCapping {
			m.MaxCapping = cm.MaxCapping
			m.MaxCappingFraction = cm.MaxCappingFraction
		}
		m.CappedEnergy += cm.CappedEnergy
		m.OverridesIssued += cm.OverridesIssued
		m.ThrottleEvents += cm.ThrottleEvents
		m.PlansComputed += cm.PlansComputed
		m.Retries += cm.Retries
		m.AbandonedOverrides += cm.AbandonedOverrides
		m.StaleTelemetry += cm.StaleTelemetry
		m.Crashes += cm.Crashes
		m.Restarts += cm.Restarts
	}
	return m
}
