package dynamo

import (
	"fmt"
	"sort"
	"time"

	"coordcharge/internal/core"
	"coordcharge/internal/rack"
	"coordcharge/internal/storm"
	"coordcharge/internal/units"
)

// This file is the synchronous control plane's checkpoint surface. Only the
// engine-free configuration is directly serializable: with an engine,
// pending-override deadlines and latency-deferred command applications live
// as event closures inside the engine's queue, which cannot be written to
// disk — engine-backed runs restore by deterministic replay instead (see
// internal/scenario). ExportState therefore refuses engine-backed
// controllers rather than silently dropping their in-flight commands.

// AgentState is one agent's serializable state: its cached snapshot and the
// rack version it was taken at (the fault path serves this cache on stale
// reads, so it is state, not a derived cache).
type AgentState struct {
	Rack     string   `json:"rack"`
	Last     Snapshot `json:"last"`
	LastVer  uint64   `json:"last_ver"`
	HaveLast bool     `json:"have_last"`
}

// ExportState captures the agent's snapshot cache.
func (a *Agent) ExportState() AgentState {
	return AgentState{Rack: a.rack.Name(), Last: a.last, LastVer: a.lastVer, HaveLast: a.haveLast}
}

// RestoreState overwrites the agent's snapshot cache from a checkpoint.
func (a *Agent) RestoreState(st AgentState) error {
	if st.Rack != a.rack.Name() {
		return fmt.Errorf("dynamo: agent state for rack %q restored into %q", st.Rack, a.rack.Name())
	}
	a.last = st.Last
	a.lastVer = st.LastVer
	a.haveLast = st.HaveLast
	return nil
}

// PendingState is one unconfirmed override: the agent index it targets, the
// wanted current, and the tick-driven retry deadline.
type PendingState struct {
	Idx      int           `json:"idx"`
	Want     units.Current `json:"want"`
	Attempts int           `json:"attempts"`
	IssuedAt time.Duration `json:"issued_at"`
	Due      time.Duration `json:"due"`
}

// ControllerState is one synchronous controller's serializable state.
// Construction-time configuration (mode, core config, retry policy,
// staleness bound, observability wiring) is rebuilt from the spec.
type ControllerState struct {
	Node        string          `json:"node"`
	Metrics     Metrics         `json:"metrics"`
	Down        bool            `json:"down"`
	LastTick    time.Duration   `json:"last_tick"`
	WasCharging []bool          `json:"was_charging"`
	Postponed   []core.RackInfo `json:"postponed,omitempty"`
	Pending     []PendingState  `json:"pending,omitempty"`
	Tel         []Snapshot      `json:"tel"`
	TelOK       []bool          `json:"tel_ok"`
	TelVer      []uint64        `json:"tel_ver"`
	// LastFresh/TelSummaried carry the telemetry-summary gate. Dropping them
	// would make a resumed run journal a summary the uninterrupted run
	// suppressed, breaking flight-digest parity across a kill.
	LastFresh    int               `json:"last_fresh"`
	TelSummaried bool              `json:"tel_summaried"`
	Storm        *storm.QueueState `json:"storm,omitempty"`
}

// ExportState captures the controller's mutable state. Postponed charges are
// sorted by agent ID and pending overrides by agent index, so the encoding
// is deterministic. It fails on an engine-backed controller: its in-flight
// retry deadlines are engine events and cannot be serialized.
func (c *Controller) ExportState() (ControllerState, error) {
	if c.engine != nil {
		return ControllerState{}, fmt.Errorf("dynamo: controller %s is engine-backed; checkpoint it by replay, not state export", c.comp)
	}
	st := ControllerState{
		Node:         c.node.Name(),
		Metrics:      c.metrics,
		Down:         c.down,
		LastTick:     c.lastTick,
		WasCharging:  append([]bool(nil), c.wasCharging...),
		Tel:          append([]Snapshot(nil), c.tel...),
		TelOK:        append([]bool(nil), c.telOK...),
		TelVer:       append([]uint64(nil), c.telVer...),
		LastFresh:    c.lastFresh,
		TelSummaried: c.telSummaried,
	}
	for _, ri := range c.postponed {
		st.Postponed = append(st.Postponed, ri)
	}
	sort.Slice(st.Postponed, func(i, j int) bool { return st.Postponed[i].ID < st.Postponed[j].ID })
	for idx, p := range c.pending {
		st.Pending = append(st.Pending, PendingState{
			Idx: idx, Want: p.want, Attempts: p.attempts, IssuedAt: p.issuedAt, Due: p.due,
		})
	}
	sort.Slice(st.Pending, func(i, j int) bool { return st.Pending[i].Idx < st.Pending[j].Idx })
	if c.stormQ != nil {
		qs := c.stormQ.ExportState()
		st.Storm = &qs
	}
	return st, nil
}

// RestoreState overwrites the controller's mutable state from a checkpoint.
// The derived caches rebuild from what is restored: telOKCount from telOK,
// the name index and view buffer are construction-time.
func (c *Controller) RestoreState(st ControllerState) error {
	if st.Node != c.node.Name() {
		return fmt.Errorf("dynamo: controller state for node %q restored into %q", st.Node, c.node.Name())
	}
	if c.engine != nil {
		return fmt.Errorf("dynamo: controller %s is engine-backed; restore it by replay, not state import", c.comp)
	}
	if len(st.WasCharging) != len(c.agents) || len(st.Tel) != len(c.agents) ||
		len(st.TelOK) != len(c.agents) || len(st.TelVer) != len(c.agents) {
		return fmt.Errorf("dynamo: controller state for %s sized for %d agents, have %d",
			st.Node, len(st.WasCharging), len(c.agents))
	}
	c.metrics = st.Metrics
	c.down = st.Down
	c.lastTick = st.LastTick
	copy(c.wasCharging, st.WasCharging)
	copy(c.tel, st.Tel)
	copy(c.telOK, st.TelOK)
	copy(c.telVer, st.TelVer)
	c.lastFresh = st.LastFresh
	c.telSummaried = st.TelSummaried
	c.telOKCount = 0
	for _, ok := range c.telOK {
		if ok {
			c.telOKCount++
		}
	}
	c.postponed = make(map[*rack.Rack]core.RackInfo, len(st.Postponed))
	for _, ri := range st.Postponed {
		if ri.ID < 0 || ri.ID >= len(c.agents) {
			return fmt.Errorf("dynamo: controller state for %s has postponed rack ID %d out of range", st.Node, ri.ID)
		}
		c.postponed[c.agents[ri.ID].Rack()] = ri
	}
	c.pending = nil
	if len(st.Pending) > 0 {
		c.pending = make(map[int]*pendingOverride, len(st.Pending))
		for _, p := range st.Pending {
			if p.Idx < 0 || p.Idx >= len(c.agents) {
				return fmt.Errorf("dynamo: controller state for %s has pending override index %d out of range", st.Node, p.Idx)
			}
			c.pending[p.Idx] = &pendingOverride{
				want: p.Want, attempts: p.Attempts, issuedAt: p.IssuedAt, due: p.Due,
			}
		}
	}
	if st.Storm != nil {
		if c.stormQ == nil {
			return fmt.Errorf("dynamo: controller state for %s carries a storm queue but admission is not armed", st.Node)
		}
		c.stormQ.RestoreState(*st.Storm)
	}
	return nil
}

// HierarchyState is the whole synchronous control plane: every controller in
// tick order, every agent sorted by rack name, every guard in construction
// order.
type HierarchyState struct {
	Controllers []ControllerState  `json:"controllers"`
	Agents      []AgentState       `json:"agents"`
	Guards      []storm.GuardState `json:"guards,omitempty"`
}

// ExportState captures the hierarchy's full control-plane state. It fails on
// an engine-backed hierarchy (see ControllerState).
func (h *Hierarchy) ExportState() (HierarchyState, error) {
	var st HierarchyState
	for _, c := range h.controllers {
		cs, err := c.ExportState()
		if err != nil {
			return HierarchyState{}, err
		}
		st.Controllers = append(st.Controllers, cs)
	}
	for _, a := range h.agents {
		st.Agents = append(st.Agents, a.ExportState())
	}
	sort.Slice(st.Agents, func(i, j int) bool { return st.Agents[i].Rack < st.Agents[j].Rack })
	for _, g := range h.guards {
		st.Guards = append(st.Guards, g.ExportState())
	}
	return st, nil
}

// RestoreState overwrites the hierarchy's control-plane state from a
// checkpoint. Controllers match by tick order, agents by rack name, guards
// by construction order.
func (h *Hierarchy) RestoreState(st HierarchyState) error {
	if len(st.Controllers) != len(h.controllers) {
		return fmt.Errorf("dynamo: hierarchy state has %d controllers, have %d", len(st.Controllers), len(h.controllers))
	}
	if len(st.Guards) != len(h.guards) {
		return fmt.Errorf("dynamo: hierarchy state has %d guards, have %d", len(st.Guards), len(h.guards))
	}
	byName := make(map[string]*Agent, len(h.agents))
	for _, a := range h.agents {
		byName[a.Rack().Name()] = a
	}
	if len(st.Agents) != len(byName) {
		return fmt.Errorf("dynamo: hierarchy state has %d agents, have %d", len(st.Agents), len(byName))
	}
	for _, as := range st.Agents {
		a, ok := byName[as.Rack]
		if !ok {
			return fmt.Errorf("dynamo: hierarchy state names unknown agent rack %q", as.Rack)
		}
		if err := a.RestoreState(as); err != nil {
			return err
		}
	}
	for i, cs := range st.Controllers {
		if err := h.controllers[i].RestoreState(cs); err != nil {
			return err
		}
	}
	for i, gs := range st.Guards {
		if err := h.guards[i].RestoreState(gs); err != nil {
			return err
		}
	}
	return nil
}
