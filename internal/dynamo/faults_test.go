package dynamo

import (
	"math"
	"testing"
	"time"

	"coordcharge/internal/battery"
	"coordcharge/internal/bus"
	"coordcharge/internal/charger"
	"coordcharge/internal/core"
	"coordcharge/internal/faults"
	"coordcharge/internal/power"
	"coordcharge/internal/rack"
	"coordcharge/internal/sim"
	"coordcharge/internal/units"
)

// findSeed scans for an injector seed whose Bernoulli draw sequence matches
// want. Tests that need a specific fault pattern (first command dropped,
// second delivered) search rather than hard-code a magic seed.
func findSeed(t *testing.T, cfg faults.Config, want func(*faults.Injector) bool) int64 {
	t.Helper()
	for s := int64(0); s < 4096; s++ {
		cfg.Seed = s
		if want(faults.New(cfg)) {
			return s
		}
	}
	t.Fatal("no seed with the required fault pattern in [0, 4096)")
	return 0
}

// tickSync steps the racks and ticks the controller on a fixed cadence.
func tickSync(ctl *Controller, racks []*rack.Rack, from, until, step time.Duration) {
	for now := from; now <= until; now += step {
		for _, r := range racks {
			r.Step(now, step)
		}
		ctl.Tick(now)
	}
}

// A lost override must be retransmitted after the confirmation timeout and
// succeed on the second attempt.
func TestSyncOverrideRetryAfterCommandLoss(t *testing.T) {
	lossy := faults.Config{CommandLoss: 0.5}
	seed := findSeed(t, lossy, func(in *faults.Injector) bool {
		return in.DropCommand() && !in.DropCommand()
	})
	lossy.Seed = seed
	rpp, racks := row(t, []rack.Priority{rack.P3}, charger.Variable{})
	agents := agentsFor(racks)
	agents[0].SetFaults(faults.New(lossy))
	ctl := NewControllerOpts(rpp, agents, ModePriorityAware, core.DefaultConfig(), true, ControllerOptions{
		Retry: RetryPolicy{Timeout: 5 * time.Second, Backoff: 1, MaxAttempts: 4},
	})
	transition(racks, 12600*units.Watt, 45*time.Second) // DOD 0.5: charger starts at 2 A, P3 SLA wants 1 A
	tickSync(ctl, racks, 46*time.Second, 60*time.Second, 3*time.Second)

	if got := racks[0].Pack().Setpoint(); got != 1 {
		t.Errorf("setpoint after retry = %v, want 1 A", got)
	}
	m := ctl.Metrics()
	if m.OverridesIssued != 1 || m.Retries != 1 || m.AbandonedOverrides != 0 {
		t.Errorf("metrics = %+v, want 1 override, 1 retry, 0 abandoned", m)
	}
}

// With the command path fully dead, the controller must stop retrying after
// MaxAttempts and record the abandonment.
func TestSyncOverrideAbandonedAfterMaxAttempts(t *testing.T) {
	rpp, racks := row(t, []rack.Priority{rack.P3}, charger.Variable{})
	agents := agentsFor(racks)
	agents[0].SetFaults(faults.New(faults.Config{Seed: 7, CommandLoss: 1}))
	ctl := NewControllerOpts(rpp, agents, ModePriorityAware, core.DefaultConfig(), true, ControllerOptions{
		Retry: RetryPolicy{Timeout: 5 * time.Second, Backoff: 1, MaxAttempts: 3},
	})
	transition(racks, 12600*units.Watt, 45*time.Second)
	tickSync(ctl, racks, 46*time.Second, 70*time.Second, 3*time.Second)

	if got := racks[0].Pack().Setpoint(); got != 2 {
		t.Errorf("setpoint = %v, want the charger's 2 A (no override ever landed)", got)
	}
	m := ctl.Metrics()
	if m.Retries != 2 || m.AbandonedOverrides != 1 {
		t.Errorf("metrics = %+v, want 2 retries then 1 abandonment", m)
	}
}

// When telemetry goes stale the controller must assume worst-case recharge:
// here that assumption overloads the breaker, so it throttles the invisible
// rack and caps servers for the remainder — over-protecting, never under.
func TestSyncStaleTelemetryProtectsConservatively(t *testing.T) {
	rpp, racks := row(t, []rack.Priority{rack.P3}, charger.Variable{})
	rpp.SetLimit(12700 * units.Watt)
	agents := agentsFor(racks)
	ctl := NewControllerOpts(rpp, agents, ModePriorityAware, core.DefaultConfig(), true, ControllerOptions{
		StaleAfter: 5 * time.Second,
	})
	transition(racks, 11000*units.Watt, 50*time.Second) // DOD ≈ 0.49
	// Healthy ticks: the plan lands and the breaker is comfortably inside its
	// limit (11 kW IT + at most 2 A · 380 W of recharge).
	tickSync(ctl, racks, 51*time.Second, 54*time.Second, 3*time.Second)
	if got := ctl.Metrics().MaxCapping; got != 0 {
		t.Fatalf("capping with fresh telemetry = %v, want none", got)
	}

	// Telemetry dies; commands still flow.
	agents[0].SetFaults(faults.New(faults.Config{Seed: 1, TelemetryLoss: 1}))
	tickSync(ctl, racks, 57*time.Second, 72*time.Second, 3*time.Second)

	m := ctl.Metrics()
	if m.StaleTelemetry == 0 {
		t.Error("stale telemetry never recorded")
	}
	if m.ThrottleEvents == 0 {
		t.Error("conservative overload never throttled the invisible rack")
	}
	if got := racks[0].Pack().Setpoint(); got != 1 {
		t.Errorf("setpoint = %v, want throttled to 1 A", got)
	}
	// Conservative view: 11000 W demand + 1900 W assumed recharge = 12900 W
	// against a 12700 W limit; the projected throttle recovery of a stale rack
	// must not count, so the whole 200 W excess is capped away.
	if got := racks[0].CappedPower(); math.Abs(float64(got)-200) > 1 {
		t.Errorf("capped power = %v, want ≈200 W", got)
	}
	if math.Abs(float64(m.MaxCapping)-200) > 1 {
		t.Errorf("MaxCapping = %v, want ≈200 W", m.MaxCapping)
	}
}

// A crash wipes controller state; the restart must rebuild charge tracking
// from agent reads instead of re-planning the in-flight charge.
func TestSyncControllerCrashRestartResyncsFromReads(t *testing.T) {
	rpp, racks := row(t, []rack.Priority{rack.P1}, charger.Variable{})
	ctl := NewController(rpp, agentsFor(racks), ModePriorityAware, core.DefaultConfig(), true)
	transition(racks, 9000*units.Watt, 45*time.Second) // DOD ≈ 0.357, P1 SLA wants 3 A
	tickSync(ctl, racks, 46*time.Second, 49*time.Second, 3*time.Second)
	if got := racks[0].Pack().Setpoint(); got != 3 {
		t.Fatalf("planned setpoint = %v, want 3 A", got)
	}

	ctl.Crash()
	if !ctl.Down() {
		t.Fatal("controller not down after Crash")
	}
	racks[0].Step(52*time.Second, 3*time.Second)
	ctl.Tick(52 * time.Second) // down: breaker physics only
	ctl.Restart(55 * time.Second)
	tickSync(ctl, racks, 55*time.Second, 70*time.Second, 3*time.Second)

	m := ctl.Metrics()
	if m.PlansComputed != 1 {
		t.Errorf("PlansComputed = %d, want 1 (restart must not re-plan an in-flight charge)", m.PlansComputed)
	}
	if m.Crashes != 1 || m.Restarts != 1 {
		t.Errorf("crash/restart counters = %d/%d, want 1/1", m.Crashes, m.Restarts)
	}
	if got := racks[0].Pack().Setpoint(); got != 3 {
		t.Errorf("setpoint after restart = %v, want 3 A preserved", got)
	}
}

// A postponed charge must survive a controller crash: the deficit lives in
// the rack (PendingDOD), so the restarted controller rediscovers it from
// reads and resumes it when headroom returns.
func TestSyncCrashRecoversPostponedChargeFromRacks(t *testing.T) {
	rpp, racks := row(t, []rack.Priority{rack.P1, rack.P3}, charger.Variable{})
	// 18 kW IT + 1.2 kW: enough for P1's floor and 3 A upgrade, not P3's floor.
	rpp.SetLimit(19200 * units.Watt)
	ctl := NewController(rpp, agentsFor(racks), ModePostpone, core.DefaultConfig(), true)
	transition(racks, 9000*units.Watt, 45*time.Second)
	tickSync(ctl, racks, 46*time.Second, 46*time.Second, 3*time.Second)
	if racks[1].Charging() {
		t.Fatal("P3 charge not postponed")
	}
	if racks[1].PendingDOD() <= 0 {
		t.Fatal("postponed rack records no pending DOD")
	}

	ctl.Crash()
	ctl.Restart(49 * time.Second)
	// Demand drops: headroom for the postponed charge returns.
	for _, r := range racks {
		r.SetDemand(7 * units.Kilowatt)
	}
	tickSync(ctl, racks, 52*time.Second, 58*time.Second, 3*time.Second)

	if !racks[1].Charging() {
		t.Error("postponed charge not resumed after crash+restart")
	}
	if got := racks[1].PendingDOD(); got != 0 {
		t.Errorf("PendingDOD after resume = %v, want 0", got)
	}
	if got := racks[0].Pack().Setpoint(); got != 3 {
		t.Errorf("P1 setpoint = %v, want 3 A preserved across the crash", got)
	}
}

// The rack-local watchdog is the last line of defense: with the command path
// completely dead (overrides and heartbeats all lost), every charging rack
// must degrade itself to the safe current within one TTL of the charge start.
func TestWatchdogFailSafeUnderTotalCommandLoss(t *testing.T) {
	cfg := core.DefaultConfig()
	rpp, racks := row(t, []rack.Priority{rack.P1, rack.P3}, charger.Variable{})
	h, err := BuildHierarchyOpts(rpp, ModePriorityAware, cfg, HierarchyOptions{
		Injector:    faults.New(faults.Config{Seed: 3, CommandLoss: 1}),
		WatchdogTTL: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	transition(racks, 9000*units.Watt, 45*time.Second)
	for now := 46 * time.Second; now <= 130*time.Second; now += 3 * time.Second {
		for _, r := range racks {
			r.Step(now, 3*time.Second)
		}
		h.Tick(now)
	}
	for i, r := range racks {
		if !r.FailSafeActive() {
			t.Errorf("rack %d: watchdog never fired", i)
		}
		if got := r.FailSafeActivations(); got != 1 {
			t.Errorf("rack %d: %d fail-safe activations, want 1", i, got)
		}
		if got := r.Pack().Setpoint(); got != cfg.SafeCurrent() {
			t.Errorf("rack %d: setpoint = %v, want safe current %v", i, got, cfg.SafeCurrent())
		}
	}
}

// With a healthy command path the heartbeats keep re-arming the watchdog and
// the planned (higher) charging current stays in force.
func TestWatchdogHeldOffByHeartbeats(t *testing.T) {
	rpp, racks := row(t, []rack.Priority{rack.P1}, charger.Variable{})
	h, err := BuildHierarchyOpts(rpp, ModePriorityAware, core.DefaultConfig(), HierarchyOptions{
		WatchdogTTL: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	transition(racks, 9000*units.Watt, 45*time.Second)
	for now := 46 * time.Second; now <= 130*time.Second; now += 3 * time.Second {
		racks[0].Step(now, 3*time.Second)
		h.Tick(now)
	}
	if racks[0].FailSafeActive() || racks[0].FailSafeActivations() != 0 {
		t.Error("watchdog fired despite per-tick heartbeats")
	}
	if got := racks[0].Pack().Setpoint(); got != 3 {
		t.Errorf("setpoint = %v, want the planned 3 A intact", got)
	}
}

// asyncFaultRow is asyncRow with degraded-mode options on the leaf.
func asyncFaultRow(t *testing.T, prios []rack.Priority, limit units.Power, opts AsyncOptions) (*sim.Engine, *bus.Bus, []*rack.Rack, *AsyncLeaf) {
	t.Helper()
	engine := sim.NewEngine()
	b := bus.New(engine, bus.ConstantLatency(10*time.Millisecond))
	rpp := power.NewNode("rpp", power.LevelRPP, limit)
	racks := make([]*rack.Rack, len(prios))
	for i, p := range prios {
		racks[i] = rack.New(rackName(i), p, charger.Variable{}, battery.Fig5Surface())
		rpp.AttachLoad(racks[i])
		NewAsyncAgent(b, engine, racks[i], 0)
	}
	leaf := NewAsyncLeafOpts(b, engine, rpp, racks, ModePriorityAware, core.DefaultConfig(), true, 3*time.Second, opts)
	return engine, b, racks, leaf
}

func rackName(i int) string { return "fr" + string(rune('0'+i)) }

// restoreAll runs the standard 45 s open transition on every rack and syncs
// the engine to the restore instant.
func restoreAll(engine *sim.Engine, racks []*rack.Rack, load units.Power) {
	for _, r := range racks {
		r.SetDemand(load)
		r.LoseInput(0)
		r.Step(45*time.Second, 45*time.Second)
		r.RestoreInput(45 * time.Second)
	}
	engine.ScheduleAt(45*time.Second, "sync", func(time.Duration) {})
	engine.Run(45 * time.Second)
}

// The async leaf owns override delivery: a dropped override message must be
// retransmitted once the confirmation timeout lapses.
func TestAsyncLeafRetriesLostOverride(t *testing.T) {
	engine, b, racks, leaf := asyncFaultRow(t, []rack.Priority{rack.P3}, power.DefaultRPPLimit, AsyncOptions{
		Retry: RetryPolicy{Timeout: 8 * time.Second, Backoff: 1, MaxAttempts: 4},
	})
	dropped := 0
	b.DropFilter = func(m *bus.Message) bool {
		if m.Kind == "override" && dropped == 0 {
			dropped++
			return true
		}
		return false
	}
	restoreAll(engine, racks, 9*units.Kilowatt) // DOD ≈ 0.357: plan wants 1 A over the charger's 2 A
	driveAsync(engine, racks, 46*time.Second, 70*time.Second, time.Second)

	if dropped != 1 {
		t.Fatalf("dropped %d overrides, want exactly the first", dropped)
	}
	if got := racks[0].Pack().Setpoint(); got != 1 {
		t.Errorf("setpoint = %v, want 1 A via retransmission", got)
	}
	if got := leaf.Metrics().Retries; got == 0 {
		t.Error("no retry recorded")
	}
}

// An at-least-once transport may deliver the same override several times; the
// charge trajectory must be identical to single delivery (idempotence).
func TestAsyncDuplicatedOverridesAreIdempotent(t *testing.T) {
	run := func(dup int) (*rack.Rack, Metrics) {
		engine, b, racks, leaf := asyncFaultRow(t, []rack.Priority{rack.P1}, power.DefaultRPPLimit, AsyncOptions{
			Retry: RetryPolicy{Timeout: 8 * time.Second, Backoff: 2, MaxAttempts: 4},
		})
		if dup > 0 {
			b.Perturb = func(_ time.Duration, m *bus.Message) (bool, time.Duration, int) {
				if m.Kind == "override" {
					return false, 0, dup
				}
				return false, 0, 0
			}
		}
		restoreAll(engine, racks, 9*units.Kilowatt)
		driveAsync(engine, racks, 46*time.Second, 600*time.Second, time.Second)
		return racks[0], leaf.Metrics()
	}
	clean, cleanM := run(0)
	duped, dupedM := run(2)

	if a, b := clean.Pack().Setpoint(), duped.Pack().Setpoint(); a != b {
		t.Errorf("setpoint diverged: single %v vs duplicated %v", a, b)
	}
	if a, b := clean.Pack().FractionRemaining(), duped.Pack().FractionRemaining(); math.Abs(float64(a-b)) > 1e-12 {
		t.Errorf("charge trajectory diverged: single %v vs duplicated %v remaining", a, b)
	}
	if cleanM.OverridesIssued != dupedM.OverridesIssued || cleanM.Retries != dupedM.Retries {
		t.Errorf("controller observables diverged: %+v vs %+v", cleanM, dupedM)
	}
}

// Persistent read loss to one agent must not stall the poll loop: the
// evaluation deadline fires, the invisible rack is assumed worst-case, and
// the resulting conservative overload is handled with throttle + caps.
func TestAsyncLeafEvaluatesDespitePersistentReadLoss(t *testing.T) {
	engine, b, racks, leaf := asyncFaultRow(t, []rack.Priority{rack.P1, rack.P3}, 20500*units.Watt, AsyncOptions{
		StaleAfter: 6 * time.Second,
	})
	restoreAll(engine, racks, 9*units.Kilowatt)
	driveAsync(engine, racks, 46*time.Second, 60*time.Second, time.Second)
	// Plan landed: P1 at 3 A, P3 at 1 A; 19.52 kW inside the 20.5 kW limit.
	if got := racks[0].Pack().Setpoint(); got != 3 {
		t.Fatalf("P1 setpoint = %v, want 3 A before faults", got)
	}

	// Rack fr1 becomes unreadable; commands still flow.
	lost := AgentEndpoint(racks[1].Name())
	b.DropFilter = func(m *bus.Message) bool { return m.Kind == "read" && m.To == lost }
	driveAsync(engine, racks, 61*time.Second, 90*time.Second, time.Second)

	m := leaf.Metrics()
	if m.StaleTelemetry == 0 {
		t.Error("stale telemetry never recorded — did the deadline evaluation run?")
	}
	if m.ThrottleEvents == 0 {
		t.Error("conservative overload never throttled")
	}
	// Assumed draw: 9000+1140 (P1 fresh) + 9000+1900 (P3 worst case) =
	// 21040 W against 20500 W; the unwitnessed throttle recovery must not
	// count, so ≈540 W of server power is capped.
	if got := racks[1].CappedPower(); math.Abs(float64(got)-540) > 1 {
		t.Errorf("capped power on stale rack = %v, want ≈540 W", got)
	}
}

// An upper controller whose leaf stops answering aggregates must keep
// evaluating at the deadline with that leaf's racks aged into conservatism.
func TestAsyncUpperDeadlineEvaluatesWithUnreachableLeaf(t *testing.T) {
	engine := sim.NewEngine()
	b := bus.New(engine, bus.ConstantLatency(10*time.Millisecond))
	msb := power.NewNode("msb", power.LevelMSB, 380*units.Kilowatt)
	cfg := core.DefaultConfig()
	var racks []*rack.Rack
	var leaves []*AsyncLeaf
	for i := 0; i < 2; i++ {
		rpp := power.NewNode("rppu"+string(rune('0'+i)), power.LevelRPP, power.DefaultRPPLimit)
		r := rack.New("fu"+string(rune('0'+i)), rack.P2, charger.Variable{}, battery.Fig5Surface())
		rpp.AttachLoad(r)
		NewAsyncAgent(b, engine, r, 0)
		leaves = append(leaves, NewAsyncLeaf(b, engine, rpp, []*rack.Rack{r}, ModePriorityAware, cfg, false, 3*time.Second))
		racks = append(racks, r)
	}
	upper := NewAsyncUpperOpts(b, engine, msb, leaves, ModePriorityAware, cfg, 3*time.Second, AsyncOptions{
		StaleAfter: 10 * time.Second,
	})
	restoreAll(engine, racks, 9*units.Kilowatt)
	driveAsync(engine, racks, 46*time.Second, 60*time.Second, time.Second)
	if got := upper.Metrics().PlansComputed; got != 1 {
		t.Fatalf("PlansComputed = %d, want 1 before faults", got)
	}

	silenced := LeafEndpoint("rppu1")
	b.DropFilter = func(m *bus.Message) bool { return m.Kind == "aggregate" && m.To == silenced }
	driveAsync(engine, racks, 61*time.Second, 100*time.Second, time.Second)

	if got := upper.Metrics().StaleTelemetry; got == 0 {
		t.Error("upper never aged the silent leaf's racks — deadline evaluation did not run")
	}
}

// Smoke: the full async stack under the chaos suite's default fault rates —
// bus perturbation, heartbeats, watchdog, retries — still completes the
// charge, and the injector demonstrably did inject.
func TestWireBusFaultsDefaultRatesSmoke(t *testing.T) {
	fcfg := faults.Default()
	fcfg.Seed = 42
	inj := faults.New(fcfg)
	engine, b, racks, leaf := asyncFaultRow(t, []rack.Priority{rack.P2}, power.DefaultRPPLimit, AsyncOptions{
		Injector:   inj,
		StaleAfter: 9 * time.Second,
		Retry:      RetryPolicy{Timeout: 10 * time.Second, Backoff: 2, MaxAttempts: 4},
		Heartbeat:  true,
	})
	WireBusFaults(b, inj)
	racks[0].SetWatchdog(60*time.Second, core.DefaultConfig().SafeCurrent())
	restoreAll(engine, racks, 9*units.Kilowatt)
	driveAsync(engine, racks, 48*time.Second, 90*time.Minute, 3*time.Second)

	if racks[0].Charging() {
		t.Error("charge never completed under default fault rates")
	}
	c := inj.Counters()
	if c.ReadsDropped == 0 || c.CommandsDropped == 0 {
		t.Errorf("injector idle: %+v", c)
	}
	if leaf.Metrics().PlansComputed == 0 {
		t.Error("no plan ever computed")
	}
}

// The fail-safe must cover every charge while the partition lasts, not just
// the first: after the watchdog fires once under total command loss, a second
// open transition starts a new charge, which must begin at the safe current
// immediately instead of getting another run at the policy current.
func TestWatchdogFailSafeCoversSubsequentCharges(t *testing.T) {
	cfg := core.DefaultConfig()
	rpp, racks := row(t, []rack.Priority{rack.P2}, charger.Original{})
	h, err := BuildHierarchyOpts(rpp, ModePriorityAware, cfg, HierarchyOptions{
		Injector:    faults.New(faults.Config{Seed: 3, CommandLoss: 1}),
		WatchdogTTL: 20 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	tick := func(from, until time.Duration) {
		for now := from; now <= until; now += 3 * time.Second {
			for _, r := range racks {
				r.Step(now, 3*time.Second)
			}
			h.Tick(now)
		}
	}
	transition(racks, 9000*units.Watt, 45*time.Second)
	tick(46*time.Second, 90*time.Second)
	if !racks[0].FailSafeActive() || racks[0].Pack().Setpoint() != cfg.SafeCurrent() {
		t.Fatalf("charge 1 not demoted: setpoint = %v", racks[0].Pack().Setpoint())
	}

	racks[0].LoseInput(100 * time.Second)
	racks[0].Step(145*time.Second, 45*time.Second)
	racks[0].RestoreInput(145 * time.Second)
	if got := racks[0].Pack().Setpoint(); got != cfg.SafeCurrent() {
		t.Errorf("charge 2 setpoint = %v, want safe %v from the start", got, cfg.SafeCurrent())
	}
	tick(148*time.Second, 200*time.Second)
	if got := racks[0].Pack().Setpoint(); got != cfg.SafeCurrent() {
		t.Errorf("charge 2 setpoint after ticks = %v, want safe %v", got, cfg.SafeCurrent())
	}
	if !racks[0].FailSafeActive() {
		t.Error("fail-safe did not persist across charges")
	}
	if got := racks[0].FailSafeActivations(); got != 2 {
		t.Errorf("activations = %d, want 2 (one per demoted charge)", got)
	}
}

// Heartbeats now ride the same command-settling latency as overrides; they
// must still hold off the watchdog as long as the TTL exceeds the latency
// plus the tick period.
func TestWatchdogHeldOffByDelayedHeartbeats(t *testing.T) {
	engine := sim.NewEngine()
	rpp, racks := row(t, []rack.Priority{rack.P1}, charger.Variable{})
	h, err := BuildHierarchyOpts(rpp, ModePriorityAware, core.DefaultConfig(), HierarchyOptions{
		Engine:      engine,
		Latency:     20 * time.Second,
		WatchdogTTL: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	transition(racks, 9000*units.Watt, 45*time.Second)
	for now := 46 * time.Second; now <= 200*time.Second; now += 3 * time.Second {
		racks[0].Step(now, 3*time.Second)
		h.Tick(now)
		engine.Run(now)
	}
	if racks[0].FailSafeActive() || racks[0].FailSafeActivations() != 0 {
		t.Error("watchdog fired despite delayed heartbeats")
	}
	if got := racks[0].Pack().Setpoint(); got != 3 {
		t.Errorf("setpoint = %v, want the planned 3 A intact", got)
	}
}
