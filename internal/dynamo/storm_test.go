package dynamo

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"coordcharge/internal/battery"
	"coordcharge/internal/bus"
	"coordcharge/internal/charger"
	"coordcharge/internal/core"
	"coordcharge/internal/power"
	"coordcharge/internal/rack"
	"coordcharge/internal/sim"
	"coordcharge/internal/storm"
	"coordcharge/internal/units"
)

// The recharge-storm path: every rack under the breaker drains to full depth
// of discharge, input returns at once, and the admission queue must drain the
// correlated recharge in priority-aware waves under a tight limit — with the
// breaker never tripping and completions ordered P1 < P2 < P3.

var stormPrios = []rack.Priority{
	rack.P1, rack.P1, rack.P2, rack.P2, rack.P2, rack.P3, rack.P3, rack.P3,
}

// stormRack builds one rack named so the admission queue's name tie-break
// cannot invert priority classes, with a seed-varied IT demand.
func stormRack(i int, p rack.Priority, rng *rand.Rand) *rack.Rack {
	r := rack.New(fmt.Sprintf("p%d-%02d", p, i), p, charger.Variable{}, battery.Fig5Surface())
	r.SetDemand(units.Power(4000 + rng.Intn(2001)))
	return r
}

// drainAll runs an outage until every pack is fully discharged, returning the
// virtual time at which the last one ran dry.
func drainAll(t *testing.T, racks []*rack.Rack, step time.Duration) time.Duration {
	t.Helper()
	for _, r := range racks {
		r.LoseInput(0)
	}
	now := time.Duration(0)
	for {
		now += step
		done := true
		for _, r := range racks {
			r.Step(now, step)
			if !r.Depleted() {
				done = false
			}
		}
		if done {
			return now
		}
		if now > time.Hour {
			t.Fatal("packs never depleted")
		}
	}
}

// checkPriorityOrder asserts strictly increasing mean completion time across
// priority classes.
func checkPriorityOrder(t *testing.T, racks []*rack.Rack, finished map[string]time.Duration) {
	t.Helper()
	sum := map[rack.Priority]time.Duration{}
	n := map[rack.Priority]int{}
	for _, r := range racks {
		sum[r.Priority()] += finished[r.Name()]
		n[r.Priority()]++
	}
	mean := func(p rack.Priority) time.Duration { return sum[p] / time.Duration(n[p]) }
	if !(mean(rack.P1) < mean(rack.P2) && mean(rack.P2) < mean(rack.P3)) {
		t.Fatalf("completion means not priority-ordered: P1 %v, P2 %v, P3 %v",
			mean(rack.P1), mean(rack.P2), mean(rack.P3))
	}
}

func TestSyncStormRechargeCompletesInPriorityOrder(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			rpp := power.NewNode("rpp", power.LevelRPP, power.DefaultRPPLimit)
			racks := make([]*rack.Rack, len(stormPrios))
			var it units.Power
			for i, p := range stormPrios {
				racks[i] = stormRack(i, p, rng)
				it += racks[i].Demand()
				rpp.AttachLoad(racks[i])
			}
			const step = 5 * time.Second
			restoreAt := drainAll(t, racks, step)
			for _, r := range racks {
				r.RestoreInput(restoreAt)
			}

			// Tight limit: 4 kW of recharge headroom over the IT load, with
			// a hair-trigger 5 % / 30 s protection curve. An uncoordinated
			// 8-rack recharge would blow straight through it.
			rpp.SetLimit(it + 4*units.Kilowatt)
			rpp.SetTripRule(power.TripRule{Fraction: 0.05, Sustain: 30 * time.Second})
			sc := storm.Default()
			ctl := NewControllerOpts(rpp, agentsFor(racks), ModePriorityAware,
				core.DefaultConfig(), true, ControllerOptions{Storm: &sc})

			finished := map[string]time.Duration{}
			for now := restoreAt; now <= restoreAt+8*time.Hour && len(finished) < len(racks); now += step {
				for _, r := range racks {
					r.Step(now, step)
				}
				ctl.Tick(now)
				if rpp.Tripped() {
					t.Fatalf("breaker tripped at %v", now)
				}
				for _, r := range racks {
					if _, ok := finished[r.Name()]; !ok && !r.Charging() && r.PendingDOD() == 0 && r.BatteryDOD() == 0 {
						finished[r.Name()] = now - restoreAt
					}
				}
			}
			if len(finished) != len(racks) {
				t.Fatalf("only %d/%d racks recharged", len(finished), len(racks))
			}
			m := ctl.StormQueue().Metrics()
			if m.Storms == 0 || m.Enqueued != len(racks) || m.Admitted != len(racks) {
				t.Fatalf("storm metrics = %+v, want a detected storm with all %d racks queued and admitted", m, len(racks))
			}
			if m.Waves < 2 {
				t.Fatalf("admitted in %d waves; a tight limit must force waves", m.Waves)
			}
			checkPriorityOrder(t, racks, finished)
		})
	}
}

func TestAsyncStormRechargeCompletesInPriorityOrder(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			engine := sim.NewEngine()
			b := bus.New(engine, bus.ConstantLatency(20*time.Millisecond))
			msb := power.NewNode("msb", power.LevelMSB, power.DefaultMSBLimit)
			var racks []*rack.Rack
			var leaves []*AsyncLeaf
			var it units.Power
			for li := 0; li < 2; li++ {
				rpp := msb.AddChild(power.NewNode(fmt.Sprintf("rpp%d", li), power.LevelRPP, power.DefaultRPPLimit))
				var leafRacks []*rack.Rack
				for i := 0; i < 4; i++ {
					idx := li*4 + i
					r := stormRack(idx, stormPrios[idx], rng)
					it += r.Demand()
					rpp.AttachLoad(r)
					NewAsyncAgent(b, engine, r, 0)
					leafRacks = append(leafRacks, r)
					racks = append(racks, r)
				}
				leaves = append(leaves, NewAsyncLeaf(b, engine, rpp, leafRacks,
					ModePriorityAware, core.DefaultConfig(), false, 3*time.Second))
			}
			sc := storm.Default()
			upper := NewAsyncUpperOpts(b, engine, msb, leaves, ModePriorityAware,
				core.DefaultConfig(), 6*time.Second, AsyncOptions{Storm: &sc})

			const step = 5 * time.Second
			restoreAt := drainAll(t, racks, step)
			for _, r := range racks {
				r.RestoreInput(restoreAt)
			}
			msb.SetLimit(it + 4*units.Kilowatt)
			msb.SetTripRule(power.TripRule{Fraction: 0.3, Sustain: 30 * time.Second})

			finished := map[string]time.Duration{}
			for now := restoreAt; now <= restoreAt+8*time.Hour && len(finished) < len(racks); now += step {
				for _, r := range racks {
					r.Step(now, step)
				}
				engine.Run(now)
				if msb.Observe(now) || msb.Tripped() {
					t.Fatalf("breaker tripped at %v", now)
				}
				for _, r := range racks {
					if _, ok := finished[r.Name()]; !ok && !r.Charging() && r.PendingDOD() == 0 && r.BatteryDOD() == 0 {
						finished[r.Name()] = now - restoreAt
					}
				}
			}
			if len(finished) != len(racks) {
				t.Fatalf("only %d/%d racks recharged", len(finished), len(racks))
			}
			m := upper.StormQueue().Metrics()
			if m.Storms == 0 || m.Admitted != len(racks) {
				t.Fatalf("storm metrics = %+v, want a detected storm with all %d racks admitted", m, len(racks))
			}
			checkPriorityOrder(t, racks, finished)
		})
	}
}
