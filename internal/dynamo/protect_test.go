package dynamo

import (
	"fmt"
	"testing"
	"time"

	"coordcharge/internal/battery"
	"coordcharge/internal/bus"
	"coordcharge/internal/charger"
	"coordcharge/internal/core"
	"coordcharge/internal/power"
	"coordcharge/internal/rack"
	"coordcharge/internal/sim"
	"coordcharge/internal/units"
)

// Global mode lowers the uniform rate when the IT load drifts up after the
// initial plan (the baseline's only overload response short of capping).
func TestGlobalModeLowersRateAfterDrift(t *testing.T) {
	rpp, racks := row(t, []rack.Priority{rack.P1, rack.P2, rack.P3}, charger.Variable{})
	transition(racks, 11000*units.Watt, 90*time.Second)
	// Generous at plan time: everyone gets 5 A.
	rpp.SetLimit(33*units.Kilowatt + 3*5*380)
	ctl := NewController(rpp, agentsFor(racks), ModeGlobal, core.DefaultConfig(), true)
	ctl.Tick(91 * time.Second)
	for i, r := range racks {
		if got := r.Pack().Setpoint(); got != 5 {
			t.Fatalf("rack %d planned at %v, want 5 A", i, got)
		}
	}
	// Drift: +1 kW per rack leaves room for only ~2.4 A per rack.
	for _, r := range racks {
		r.SetDemand(12 * units.Kilowatt)
	}
	ctl.Tick(94 * time.Second)
	for i, r := range racks {
		if got := r.Pack().Setpoint(); got != 2 {
			t.Errorf("rack %d setpoint after drift = %v, want lowered to 2 A", i, got)
		}
	}
	if got := ctl.Metrics().MaxCapping; got != 0 {
		t.Errorf("global mode capped %v, want rate-lowering to suffice", got)
	}
}

// The async leaf caps servers when even minimum-rate charging overloads its
// breaker, and releases the caps when headroom returns.
func TestAsyncLeafCapsAsLastResort(t *testing.T) {
	engine := sim.NewEngine()
	b := bus.New(engine, bus.ConstantLatency(5*time.Millisecond))
	rpp := power.NewNode("rppcap", power.LevelRPP, 21*units.Kilowatt)
	var racks []*rack.Rack
	for i := 0; i < 2; i++ {
		r := rack.New(fmt.Sprintf("cap%d", i), rack.Priority(1+2*i), charger.Variable{}, battery.Fig5Surface())
		r.SetDemand(11 * units.Kilowatt)
		rpp.AttachLoad(r)
		NewAsyncAgent(b, engine, r, 0)
		racks = append(racks, r)
	}
	leaf := NewAsyncLeaf(b, engine, rpp, racks, ModePriorityAware, core.DefaultConfig(), true, 3*time.Second)

	drive := func(from, to time.Duration) {
		for now := from; now <= to; now += time.Second {
			for _, r := range racks {
				r.Step(now, time.Second)
			}
			engine.Run(now)
		}
	}
	// 22 kW of demand under a 21 kW breaker: caps must appear even before
	// any charging happens.
	drive(time.Second, 10*time.Second)
	var capped units.Power
	for _, r := range racks {
		capped += r.CappedPower()
	}
	if capped < 900*units.Watt || capped > 1100*units.Watt {
		t.Fatalf("capped = %v, want ~1 kW", capped)
	}
	// The P3 rack absorbs the cut.
	if racks[1].CappedPower() == 0 || racks[0].CappedPower() != 0 {
		t.Errorf("cap distribution wrong: P1 %v, P3 %v", racks[0].CappedPower(), racks[1].CappedPower())
	}
	if leaf.Metrics().MaxCapping == 0 {
		t.Error("leaf metrics did not record capping")
	}
	// Demand falls; caps must be released.
	for _, r := range racks {
		r.SetDemand(9 * units.Kilowatt)
	}
	drive(11*time.Second, 20*time.Second)
	for i, r := range racks {
		if r.CappedPower() != 0 {
			t.Errorf("rack %d still capped %v after headroom returned", i, r.CappedPower())
		}
	}
}

// The async upper controller throttles through leaves on post-plan drift
// and escalates to delegated capping when throttling cannot cover the
// excess.
func TestAsyncUpperProtects(t *testing.T) {
	engine := sim.NewEngine()
	b := bus.New(engine, bus.ConstantLatency(5*time.Millisecond))
	msb := power.NewNode("msbprot", power.LevelMSB, 47*units.Kilowatt)
	var racks []*rack.Rack
	var leaves []*AsyncLeaf
	for li := 0; li < 2; li++ {
		rpp := msb.AddChild(power.NewNode(fmt.Sprintf("rppp%d", li), power.LevelRPP, power.DefaultRPPLimit))
		var leafRacks []*rack.Rack
		for i := 0; i < 2; i++ {
			r := rack.New(fmt.Sprintf("up%d%d", li, i), rack.Priority(1+2*i), charger.Variable{}, battery.Fig5Surface())
			r.SetDemand(11 * units.Kilowatt)
			rpp.AttachLoad(r)
			NewAsyncAgent(b, engine, r, 0)
			leafRacks = append(leafRacks, r)
			racks = append(racks, r)
		}
		leaves = append(leaves, NewAsyncLeaf(b, engine, rpp, leafRacks, ModePriorityAware, core.DefaultConfig(), false, 2*time.Second))
	}
	upper := NewAsyncUpper(b, engine, msb, leaves, ModePriorityAware, core.DefaultConfig(), 4*time.Second)

	drive := func(from, to time.Duration) {
		for now := from; now <= to; now += time.Second {
			for _, r := range racks {
				r.Step(now, time.Second)
			}
			engine.Run(now)
		}
	}
	drive(time.Second, 10*time.Second)
	// Transition: all racks discharge ~35% and restore.
	for _, r := range racks {
		r.LoseInput(10 * time.Second)
	}
	drive(11*time.Second, 46*time.Second)
	for _, r := range racks {
		r.RestoreInput(46 * time.Second)
	}
	// 44 kW IT + plan: available 3 kW → P1s get 2 A, P3s floored. Let the
	// plan land, then drift demand upward to force throttling.
	drive(47*time.Second, 70*time.Second)
	if upper.Metrics().PlansComputed != 1 {
		t.Fatalf("plans = %d, want 1", upper.Metrics().PlansComputed)
	}
	for _, r := range racks {
		r.SetDemand(11400 * units.Watt)
	}
	drive(71*time.Second, 95*time.Second)
	if upper.Metrics().ThrottleEvents == 0 {
		t.Error("upper never throttled after drift")
	}
	// Escalate: demand beyond what throttling recovers → delegated caps.
	for _, r := range racks {
		r.SetDemand(12500 * units.Watt)
	}
	drive(96*time.Second, 120*time.Second)
	var capped units.Power
	for _, r := range racks {
		capped += r.CappedPower()
	}
	if capped == 0 {
		t.Error("upper never delegated capping despite a 3 kW overload")
	}
	if upper.Metrics().MaxCapping == 0 {
		t.Error("upper metrics did not record capping")
	}
}
