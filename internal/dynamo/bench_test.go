package dynamo

import (
	"fmt"
	"testing"
	"time"

	"coordcharge/internal/battery"
	"coordcharge/internal/charger"
	"coordcharge/internal/core"
	"coordcharge/internal/power"
	"coordcharge/internal/rack"
	"coordcharge/internal/units"
)

// One full control-plane monitoring cycle over a production-sized MSB with
// all 316 racks mid-charge.
func BenchmarkHierarchyTick316(b *testing.B) {
	racks := make([]*rack.Rack, 316)
	loads := make([]power.Load, 316)
	for i := range racks {
		racks[i] = rack.New(fmt.Sprintf("r%d", i), rack.Priority(1+i%3), charger.Variable{}, battery.Fig5Surface())
		racks[i].SetDemand(6 * units.Kilowatt)
		loads[i] = racks[i]
	}
	msb, err := power.Build(power.Spec{Name: "m"}, loads)
	if err != nil {
		b.Fatal(err)
	}
	h, err := BuildHierarchy(msb, ModePriorityAware, core.DefaultConfig(), nil, 0)
	if err != nil {
		b.Fatal(err)
	}
	for _, r := range racks {
		r.LoseInput(0)
		r.Step(45*time.Second, 45*time.Second)
		r.RestoreInput(45 * time.Second)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Tick(45*time.Second + time.Duration(i+1)*3*time.Second)
	}
}
