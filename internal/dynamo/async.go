package dynamo

import (
	"fmt"
	"sort"
	"strconv"
	"time"

	"coordcharge/internal/bus"
	"coordcharge/internal/charger"
	"coordcharge/internal/core"
	"coordcharge/internal/faults"
	"coordcharge/internal/grid"
	"coordcharge/internal/obs"
	"coordcharge/internal/power"
	"coordcharge/internal/rack"
	"coordcharge/internal/sim"
	"coordcharge/internal/storm"
	"coordcharge/internal/units"
)

// This file implements the distributed variant of the control plane: the
// paper's actual deployment shape, where agents on TOR switches and the
// controllers mirroring the power hierarchy are separate processes
// exchanging messages over the network (§IV-B). The synchronous Controller
// in dynamo.go models the same logic with direct reads — convenient for
// large parameter sweeps; this variant makes polling cadence, network
// latency, and message loss first-class, and upper-level controllers
// communicate exclusively through leaf controllers, as in production.
//
// Protocol, all over internal/bus:
//
//	controller → agent   "read"        → reply Snapshot
//	controller → agent   "override"    (units.Current; one-way)
//	controller → agent   "cap"/"uncap" (CapRequest; one-way)
//	controller → agent   "heartbeat"   (one-way watchdog keepalive)
//	controller → agent   "postpone"    (pause a charge; one-way)
//	controller → agent   "resume"      (units.Current admission grant; one-way)
//	upper → leaf         "aggregate"   → reply AggregateReply
//	upper → leaf         "setcurrents" (map[string]units.Current; one-way)
//	upper → leaf         "caps"        (map[string]units.Power; one-way)
//	upper → leaf         "pausecharges"  ([]string; one-way)
//	upper → leaf         "resumecharges" (map[string]units.Current; one-way)
//
// Degraded modes: a poll generation no longer waits forever for lost
// replies — it evaluates at a deadline from whatever telemetry arrived, with
// entries past the staleness bound handled conservatively; leaf controllers
// own override confirmation and retransmission (including overrides
// forwarded from upper controllers); and controllers crash and restart on
// the fault injector's schedule, resynchronising their charge-tracking state
// from the first completed poll.

// Snapshot is an agent's rack-state report.
type Snapshot struct {
	// Taken is the virtual time the snapshot was read from the rack;
	// controllers compare it against their staleness bound to detect lost
	// or delayed telemetry.
	Taken    time.Duration
	Name     string
	Priority rack.Priority
	Demand   units.Power
	ITLoad   units.Power
	Recharge units.Power
	DOD      units.Fraction
	// PendingDOD is the deficit of a postponed charge, kept rack-local so a
	// restarted controller can reconstruct its postponed set.
	PendingDOD units.Fraction
	Charging   bool
	InputUp    bool
	Setpoint   units.Current
	// ChargeStart is the virtual time the rack's current charge episode
	// began; admission grants size charging currents against the SLA time
	// already spent since it.
	ChargeStart time.Duration
}

// CapRequest asks an agent to cap its rack's servers on behalf of a
// controller.
type CapRequest struct {
	Source string
	Level  units.Power
}

// AggregateReply is a leaf controller's answer to an upper controller: the
// aggregate draw under its breaker plus the latest per-rack snapshots.
type AggregateReply struct {
	Power units.Power
	Racks []Snapshot
}

// AsyncOptions carries the degraded-mode knobs of the message-driven
// controllers.
type AsyncOptions struct {
	// Injector, when non-nil, drives the controller's crash schedule
	// (components "leaf/<node>" and "ctl/<node>").
	Injector *faults.Injector
	// StaleAfter is the telemetry freshness bound: snapshots older than
	// this are handled conservatively. Zero means telemetry never goes
	// stale (the pre-fault behaviour).
	StaleAfter time.Duration
	// Retry is the leaf's override retransmission policy (zero disables
	// retries). Its Timeout should exceed the agents' command settling plus
	// a poll round trip, so confirming telemetry has time to arrive.
	Retry RetryPolicy
	// Heartbeat emits a per-generation keepalive to every agent, feeding
	// the racks' fail-safe watchdogs.
	Heartbeat bool
	// EvalFraction is the fraction of the poll period after which an
	// incomplete poll generation evaluates anyway from the telemetry that
	// did arrive (default 0.8). Lost replies then degrade decisions instead
	// of stalling the controller forever.
	EvalFraction float64
	// Storm arms recharge-storm admission control. Only the planning upper
	// controller acts on it (leaves forward its pause/resume directives);
	// the option is ignored elsewhere.
	Storm *storm.Config
	// Grid attaches the grid signal plane to the planning upper controller:
	// planning, admission, and protection budgets derive from the effective
	// feed limit (min of breaker limit and interconnection cap), and fresh
	// starts defer into the admission queue while the policy says
	// price/carbon is over threshold. Ignored on leaves — the
	// interconnection cap constrains the site feed, not RPP breakers.
	Grid *grid.Policy
	// Obs attaches an observability sink: protective actions are counted
	// under dynamo.* metrics and control decisions are journaled to the
	// flight recorder. Nil disables instrumentation at zero cost.
	Obs *obs.Sink
}

func (o AsyncOptions) evalAfter(poll time.Duration) time.Duration {
	f := o.EvalFraction
	if f <= 0 || f > 1 {
		f = 0.8
	}
	return time.Duration(f * float64(poll))
}

// conservativeView rewrites a stale snapshot the way the synchronous
// controller does: assume the rack is energized and charging at the
// worst-case current, so the controller over-protects the breaker rather
// than under-protecting it.
func conservativeView(s Snapshot, cfg core.Config) Snapshot {
	s.InputUp = true
	s.Charging = true
	s.Setpoint = cfg.Surface.MaxCurrent()
	s.Recharge = units.Power(float64(s.Setpoint) * cfg.WattsPerAmp)
	return s
}

// AsyncAgent is the message-driven per-rack request handler.
type AsyncAgent struct {
	name   string
	r      *rack.Rack
	b      *bus.Bus
	engine *sim.Engine
	settle time.Duration
	inj    *faults.Injector
}

// AgentEndpoint returns the bus endpoint name for a rack.
func AgentEndpoint(rackName string) string { return "agent/" + rackName }

// NewAsyncAgent registers a rack's agent on the bus. settle is the charger's
// command-settling time (the ~20 s of Fig 11), applied after the override
// message is delivered.
func NewAsyncAgent(b *bus.Bus, engine *sim.Engine, r *rack.Rack, settle time.Duration) *AsyncAgent {
	a := &AsyncAgent{name: AgentEndpoint(r.Name()), r: r, b: b, engine: engine, settle: settle}
	b.Register(a.name, a.handle)
	return a
}

// SetFaults attaches a fault injector; while the injector schedules the
// agent's component down, delivered messages are silently discarded
// (requests time out, commands vanish).
func (a *AsyncAgent) SetFaults(inj *faults.Injector) { a.inj = inj }

func (a *AsyncAgent) handle(now time.Duration, msg *bus.Message) {
	if a.inj != nil && !a.inj.Up(a.name, now) {
		return
	}
	switch msg.Kind {
	case "read":
		a.b.Reply(now, msg, snapshotRack(a.r, now))
	case "override":
		i := msg.Payload.(units.Current)
		if a.settle <= 0 {
			a.r.ControllerContact(now)
			a.r.OverrideCurrent(i)
			return
		}
		a.engine.ScheduleAfter(a.settle, "settle:"+a.name, func(at time.Duration) {
			a.r.ControllerContact(at)
			a.r.OverrideCurrent(i)
		})
	case "heartbeat":
		a.r.ControllerContact(now)
	case "cap":
		req := msg.Payload.(CapRequest)
		a.r.Cap(req.Source, req.Level)
	case "uncap":
		a.r.Uncap(msg.Payload.(string))
	case "postpone":
		// Storm pause. Like capping this rides the server-management plane:
		// it takes effect on delivery, not after the charger's command
		// settling — a pause that settled lazily would defeat its purpose.
		// Duplicates are harmless (Postpone is a no-op while not charging).
		a.r.ControllerContact(now)
		a.r.Postpone()
	case "resume":
		// Storm admission grant; immediate for the same reason, and contact
		// is recorded first so a watchdogged rack does not fail-safe the
		// instant a long-queued charge restarts. Duplicates are harmless
		// (ResumeCharge is a no-op with nothing pending).
		a.r.ControllerContact(now)
		a.r.ResumeCharge(msg.Payload.(units.Current))
	default:
		panic(fmt.Errorf("dynamo: agent %s received unknown message kind %q", a.name, msg.Kind))
	}
}

// AsyncLeaf is the message-driven leaf controller: it protects one RPP by
// polling its agents, optionally plans charging sequences, and executes
// current/cap directives from upper-level controllers. The leaf owns
// override delivery: commands it sends (its own and those forwarded by upper
// controllers) are confirmed against subsequent telemetry and retransmitted
// per its RetryPolicy.
type AsyncLeaf struct {
	name       string
	node       *power.Node
	b          *bus.Bus
	engine     *sim.Engine
	cfg        core.Config
	mode       Mode
	plans      bool
	pollPeriod time.Duration
	agents     []string // agent endpoints, index-aligned with rackNames
	cache      map[string]Snapshot
	was        map[string]bool
	metrics    Metrics

	inj        *faults.Injector
	staleAfter time.Duration
	retry      RetryPolicy
	heartbeat  bool
	evalAfter  time.Duration
	gen        uint64
	down       bool
	resync     bool
	pending    map[string]*pendingOverride

	obsHandles
}

// LeafEndpoint returns the bus endpoint name for a leaf controller.
func LeafEndpoint(nodeName string) string { return "leaf/" + nodeName }

// NewAsyncLeaf registers a leaf controller polling the given agents every
// poll period. plans selects whether this controller computes initial
// charging plans (true for a standalone row; false when an upper controller
// owns planning).
func NewAsyncLeaf(b *bus.Bus, engine *sim.Engine, node *power.Node, agentRacks []*rack.Rack, mode Mode, cfg core.Config, plans bool, poll time.Duration) *AsyncLeaf {
	return NewAsyncLeafOpts(b, engine, node, agentRacks, mode, cfg, plans, poll, AsyncOptions{})
}

// NewAsyncLeafOpts is NewAsyncLeaf with degraded-mode options.
func NewAsyncLeafOpts(b *bus.Bus, engine *sim.Engine, node *power.Node, agentRacks []*rack.Rack, mode Mode, cfg core.Config, plans bool, poll time.Duration, opts AsyncOptions) *AsyncLeaf {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	l := &AsyncLeaf{
		name:       LeafEndpoint(node.Name()),
		node:       node,
		b:          b,
		engine:     engine,
		cfg:        cfg,
		mode:       mode,
		plans:      plans,
		pollPeriod: poll,
		cache:      make(map[string]Snapshot),
		was:        make(map[string]bool),
		inj:        opts.Injector,
		staleAfter: opts.StaleAfter,
		retry:      opts.Retry,
		heartbeat:  opts.Heartbeat,
		evalAfter:  opts.evalAfter(poll),
		pending:    make(map[string]*pendingOverride),
	}
	l.obsHandles = newObsHandles(opts.Obs, node.Name())
	for _, r := range agentRacks {
		l.agents = append(l.agents, AgentEndpoint(r.Name()))
	}
	b.Register(l.name, l.handle)
	engine.Every(poll, "poll:"+l.name, l.poll)
	return l
}

// Metrics returns the controller's protective-action counters.
func (l *AsyncLeaf) Metrics() Metrics { return l.metrics }

// Down reports whether the controller is currently crashed.
func (l *AsyncLeaf) Down() bool { return l.down }

func (l *AsyncLeaf) crash() {
	l.down = true
	l.metrics.Crashes++
	l.cCrashes.Inc()
	l.cache = make(map[string]Snapshot)
	l.was = make(map[string]bool)
	for _, p := range l.pending {
		l.engine.Cancel(p.ev)
	}
	l.pending = make(map[string]*pendingOverride)
}

// poll requests fresh snapshots from every agent. The generation evaluates
// when the last reply arrives, or — should replies be lost — at the
// evaluation deadline, from whatever telemetry did arrive.
func (l *AsyncLeaf) poll(now time.Duration) {
	up := !l.down
	if l.inj != nil {
		up = l.inj.Up(l.name, now)
	}
	if !up {
		if !l.down {
			l.crash()
		}
		return
	}
	if l.down {
		// Restart with empty state; the first completed generation rebuilds
		// the charge-tracking state from telemetry before planning resumes.
		l.down = false
		l.resync = true
		l.metrics.Restarts++
		l.cRestarts.Inc()
		l.sink.Event(now, l.name, "restart")
	}
	l.gen++
	gen := l.gen
	pending := len(l.agents)
	evaluated := false
	evalOnce := func(at time.Duration) {
		if evaluated || l.gen != gen || l.down {
			return
		}
		evaluated = true
		l.evaluate(at)
	}
	for _, ep := range l.agents {
		l.b.Request(l.name, ep, "read", nil, func(now time.Duration, payload any) {
			snap := payload.(Snapshot)
			// A delayed duplicate must not overwrite newer telemetry.
			if old, ok := l.cache[snap.Name]; !ok || snap.Taken >= old.Taken {
				l.cache[snap.Name] = snap
			}
			pending--
			if pending == 0 {
				evalOnce(now)
			}
		})
	}
	l.engine.ScheduleAfter(l.evalAfter, "deadline:"+l.name, evalOnce)
}

// freshSnap reports whether a snapshot is within the staleness bound.
func (l *AsyncLeaf) freshSnap(s Snapshot, now time.Duration) bool {
	return l.staleAfter <= 0 || now-s.Taken <= l.staleAfter
}

// sortedSnapshots returns the raw cache in deterministic (name) order,
// timestamps intact (upper controllers apply their own staleness policy).
func (l *AsyncLeaf) sortedSnapshots() []Snapshot {
	out := make([]Snapshot, 0, len(l.cache))
	for _, s := range l.cache {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// evaluate runs the leaf's control logic over the poll generation, stale
// entries rewritten conservatively. A generation that just planned skips
// protection: the plan's overrides are still in flight and the cached
// setpoints are stale; the next poll sees their effect (plan, then monitor —
// the paper's sequencing).
func (l *AsyncLeaf) evaluate(now time.Duration) {
	snaps := l.sortedSnapshots()
	for i, s := range snaps {
		if !l.freshSnap(s, now) {
			l.metrics.StaleTelemetry++
			l.cStale.Inc()
			snaps[i] = conservativeView(s, l.cfg)
		}
	}
	l.gHeadroom.Set(float64(l.node.Headroom()))
	planned := false
	if l.resync {
		// First generation after a restart: rebuild charge tracking from
		// observed telemetry without re-planning charges already in flight.
		for _, s := range snaps {
			l.was[s.Name] = s.Charging
		}
		l.resync = false
	} else if l.plans && l.coordinates() {
		planned = l.planFresh(now, snaps)
	}
	if !planned {
		l.protect(now, snaps)
	}
	if l.heartbeat {
		for _, ep := range l.agents {
			l.b.Send(l.name, ep, "heartbeat", nil)
		}
	}
}

func (l *AsyncLeaf) coordinates() bool {
	return l.mode == ModeGlobal || l.mode == ModePriorityAware || l.mode == ModePostpone
}

// sendOverride issues an override to a rack's agent and, with retries
// enabled, tracks it until the cache confirms the setpoint (or the rack
// stopped charging, resolving it as moot). A newer override for the same
// rack supersedes the pending one. The planned current is clamped to the
// hardware's settable range up front so confirmation compares telemetry
// against the value the charger can actually report.
func (l *AsyncLeaf) sendOverride(now time.Duration, rackName string, want units.Current) {
	want = charger.ClampOverride(want)
	l.b.Send(l.name, AgentEndpoint(rackName), "override", want)
	l.metrics.OverridesIssued++
	l.cOverrides.Inc()
	if l.sink != nil {
		l.sink.Event(now, l.name, "override",
			"rack", rackName, "amps", strconv.Itoa(int(want)))
	}
	if !l.retry.enabled() {
		return
	}
	if old := l.pending[rackName]; old != nil {
		l.engine.Cancel(old.ev)
	}
	p := &pendingOverride{want: want, attempts: 1, issuedAt: now}
	l.pending[rackName] = p
	l.armPending(rackName, p)
}

func (l *AsyncLeaf) armPending(rackName string, p *pendingOverride) {
	p.ev = l.engine.ScheduleAfter(l.retry.attemptTimeout(p.attempts), "retry:"+l.name+"/"+rackName, func(at time.Duration) {
		l.checkPendingOne(at, rackName, p)
	})
}

func (l *AsyncLeaf) checkPendingOne(now time.Duration, rackName string, p *pendingOverride) {
	if l.down || l.pending[rackName] != p {
		return
	}
	if s, ok := l.cache[rackName]; ok && s.Taken > p.issuedAt && (!s.Charging || s.Setpoint == p.want) {
		delete(l.pending, rackName)
		l.cConfirms.Inc()
		wait := (now - p.issuedAt).Seconds()
		l.hConfirm.Observe(wait)
		if l.sink != nil {
			l.sink.Event(now, l.name, "confirm",
				"rack", rackName, "wait_s", strconv.FormatFloat(wait, 'f', 1, 64))
		}
		return
	}
	if p.attempts >= l.retry.maxAttempts() {
		delete(l.pending, rackName)
		l.metrics.AbandonedOverrides++
		l.cAbandons.Inc()
		l.sink.Event(now, l.name, "abandon", "rack", rackName)
		return
	}
	p.attempts++
	l.metrics.Retries++
	l.cRetries.Inc()
	if l.sink != nil {
		l.sink.Event(now, l.name, "retry",
			"rack", rackName, "attempt", strconv.Itoa(p.attempts))
	}
	l.b.Send(l.name, AgentEndpoint(rackName), "override", p.want)
	p.issuedAt = now
	l.armPending(rackName, p)
}

// planFresh detects racks whose charge began since the previous poll —
// judged from fresh telemetry only, so a conservatively-assumed stale rack
// is never mistaken for a new charging sequence — and plans their currents
// from this breaker's available power. It reports whether a plan was issued.
func (l *AsyncLeaf) planFresh(now time.Duration, snaps []Snapshot) bool {
	var fresh []core.RackInfo
	var it units.Power
	for i, s := range snaps {
		if s.InputUp {
			it += s.ITLoad
		}
		if !l.freshSnap(s, now) {
			continue
		}
		if s.Charging && !l.was[s.Name] {
			fresh = append(fresh, core.RackInfo{ID: i, Name: s.Name, Priority: s.Priority, DOD: s.DOD})
		}
		l.was[s.Name] = s.Charging
	}
	if len(fresh) == 0 {
		return false
	}
	available := l.node.Limit() - it
	var plan []core.Assignment
	switch l.mode {
	case ModeGlobal:
		plan = core.PlanGlobal(available, fresh, l.cfg)
	default:
		cfg := l.cfg
		cfg.AllowPostpone = l.mode == ModePostpone
		plan = core.PlanPriorityAware(available, fresh, cfg)
	}
	l.metrics.PlansComputed++
	l.cPlans.Inc()
	if l.sink != nil {
		l.sink.Event(now, l.name, "plan",
			"starts", strconv.Itoa(len(fresh)),
			"available_w", strconv.FormatFloat(float64(available), 'f', 0, 64))
	}
	for _, asg := range plan {
		if asg.DOD <= 0 || asg.Postponed {
			continue
		}
		l.sendOverride(now, asg.Name, asg.Current)
	}
	return true
}

// protect throttles and caps from cached state when the breaker is
// overloaded, mirroring the synchronous controller's policy.
func (l *AsyncLeaf) protect(now time.Duration, snaps []Snapshot) {
	var wouldBe units.Power
	for _, s := range snaps {
		if s.InputUp {
			wouldBe += s.Demand + s.Recharge
		}
	}
	excess := wouldBe - l.node.Limit()
	if excess <= 0 {
		for _, s := range snaps {
			l.b.Send(l.name, AgentEndpoint(s.Name), "uncap", l.name)
		}
		return
	}
	if l.coordinates() {
		var active []core.ActiveCharge
		for i, s := range snaps {
			if s.InputUp && s.Charging {
				active = append(active, core.ActiveCharge{
					RackInfo: core.RackInfo{ID: i, Name: s.Name, Priority: s.Priority, DOD: s.DOD},
					Current:  s.Setpoint,
				})
			}
		}
		ids := core.ThrottleToMinimum(excess, active, l.cfg)
		if len(ids) > 0 {
			l.metrics.ThrottleEvents++
			l.cThrottles.Inc()
			if l.sink != nil {
				l.sink.Event(now, l.name, "throttle",
					"sheds", strconv.Itoa(len(ids)),
					"excess_w", strconv.FormatFloat(float64(excess), 'f', 0, 64))
			}
		}
		min := l.cfg.Surface.MinCurrent()
		for _, id := range ids {
			s := snaps[id]
			l.sendOverride(now, s.Name, min)
			// Projected recovery only counts for racks whose setpoint is
			// actually known; a stale rack's assumed worst-case setpoint
			// must not offset the excess.
			if l.freshSnap(s, now) {
				excess -= units.Power(float64(s.Setpoint-min) * l.cfg.WattsPerAmp)
			}
		}
	}
	if excess <= 0 {
		return
	}
	l.applyCaps(now, snaps, excess)
}

// applyCaps distributes a server power reduction lowest-priority-first via
// cap messages.
func (l *AsyncLeaf) applyCaps(now time.Duration, snaps []Snapshot, needed units.Power) {
	order := append([]Snapshot(nil), snaps...)
	sort.SliceStable(order, func(i, j int) bool { return order[i].Priority > order[j].Priority })
	var applied, it units.Power
	for _, s := range order {
		if s.InputUp {
			it += s.ITLoad
		}
	}
	for _, s := range order {
		if needed <= 0 {
			l.b.Send(l.name, AgentEndpoint(s.Name), "uncap", l.name)
			continue
		}
		if !s.InputUp {
			continue
		}
		cut := s.Demand
		if cut > needed {
			cut = needed
		}
		l.b.Send(l.name, AgentEndpoint(s.Name), "cap", CapRequest{Source: l.name, Level: s.Demand - cut})
		needed -= cut
		applied += cut
	}
	if applied > 0 && l.sink != nil {
		l.sink.Event(now, l.name, "cap",
			"applied_w", strconv.FormatFloat(float64(applied), 'f', 0, 64))
	}
	if applied > l.metrics.MaxCapping {
		l.metrics.MaxCapping = applied
		if it > 0 {
			l.metrics.MaxCappingFraction = units.Fraction(float64(applied) / float64(it))
		}
	}
	// CappedEnergy integrates at the poll period: caps hold until at least
	// the next generation.
	l.metrics.CappedEnergy += units.EnergyOver(applied, l.pollPeriod)
}

// handle serves upper-controller requests. A crashed leaf serves nothing:
// requests go unanswered (the upper's evaluation deadline copes) and
// directives vanish, as they would with a dead process.
func (l *AsyncLeaf) handle(now time.Duration, msg *bus.Message) {
	if l.inj != nil && !l.inj.Up(l.name, now) {
		if !l.down {
			l.crash()
		}
		return
	}
	if l.down {
		return
	}
	switch msg.Kind {
	case "aggregate":
		snaps := l.sortedSnapshots()
		var total units.Power
		for _, s := range snaps {
			if s.InputUp {
				total += s.ITLoad + s.Recharge
			}
		}
		l.b.Reply(now, msg, AggregateReply{Power: total, Racks: snaps})
	case "setcurrents":
		currents := msg.Payload.(map[string]units.Current)
		for _, name := range sortedKeys(currents) {
			l.sendOverride(now, name, currents[name])
		}
	case "caps":
		caps := msg.Payload.(map[string]units.Power)
		for _, name := range sortedKeys(caps) {
			l.b.Send(l.name, AgentEndpoint(name), "cap", CapRequest{Source: l.name + "/upper", Level: caps[name]})
		}
	case "uncaps":
		for _, name := range msg.Payload.([]string) {
			l.b.Send(l.name, AgentEndpoint(name), "uncap", l.name+"/upper")
		}
	case "pausecharges":
		for _, name := range msg.Payload.([]string) {
			l.b.Send(l.name, AgentEndpoint(name), "postpone", nil)
			// A pending override for a rack being paused is moot; cancel it
			// rather than let retries race the pause.
			if p := l.pending[name]; p != nil {
				l.engine.Cancel(p.ev)
				delete(l.pending, name)
			}
			l.was[name] = false
		}
	case "resumecharges":
		currents := msg.Payload.(map[string]units.Current)
		for _, name := range sortedKeys(currents) {
			l.b.Send(l.name, AgentEndpoint(name), "resume", currents[name])
		}
	default:
		panic(fmt.Errorf("dynamo: leaf %s received unknown message kind %q", l.name, msg.Kind))
	}
}

// sortedKeys returns a map's keys in sorted order: message emission must be
// deterministic or fault-injection draws (and event ordering) would vary
// run-to-run with Go's map iteration.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// AsyncUpper is the message-driven upper-level controller (SB or MSB): it
// aggregates exclusively through leaf controllers, plans charging sequences
// at the hierarchy root, and directs leaves to throttle or cap on overload.
// Override delivery (confirmation and retries) is owned by the leaves it
// forwards through.
type AsyncUpper struct {
	name       string
	node       *power.Node
	b          *bus.Bus
	engine     *sim.Engine
	cfg        core.Config
	mode       Mode
	leaves     []string
	pollPeriod time.Duration
	agg        map[string]AggregateReply
	was        map[string]bool
	metrics    Metrics

	inj        *faults.Injector
	staleAfter time.Duration
	evalAfter  time.Duration
	gen        uint64
	down       bool
	resync     bool

	// Storm admission state: the queue of paused recharges, and the grants
	// in flight — racks told to resume that telemetry has not yet confirmed
	// charging. A grant unconfirmed past the resume timeout is re-enqueued,
	// so a lost resume message degrades a rack's charge start, never loses it.
	stormQ  *storm.Queue
	resumed map[string]time.Duration
	grid    *grid.Policy // nil unless the grid signal plane is attached

	obsHandles
}

// UpperEndpoint returns the bus endpoint name for an upper controller.
func UpperEndpoint(nodeName string) string { return "ctl/" + nodeName }

// NewAsyncUpper registers an upper controller polling the given leaf
// controllers every poll period.
func NewAsyncUpper(b *bus.Bus, engine *sim.Engine, node *power.Node, leaves []*AsyncLeaf, mode Mode, cfg core.Config, poll time.Duration) *AsyncUpper {
	return NewAsyncUpperOpts(b, engine, node, leaves, mode, cfg, poll, AsyncOptions{})
}

// NewAsyncUpperOpts is NewAsyncUpper with degraded-mode options (Retry and
// Heartbeat are leaf concerns and ignored here).
func NewAsyncUpperOpts(b *bus.Bus, engine *sim.Engine, node *power.Node, leaves []*AsyncLeaf, mode Mode, cfg core.Config, poll time.Duration, opts AsyncOptions) *AsyncUpper {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	u := &AsyncUpper{
		name:       UpperEndpoint(node.Name()),
		node:       node,
		b:          b,
		engine:     engine,
		cfg:        cfg,
		mode:       mode,
		pollPeriod: poll,
		agg:        make(map[string]AggregateReply),
		was:        make(map[string]bool),
		inj:        opts.Injector,
		staleAfter: opts.StaleAfter,
		evalAfter:  opts.evalAfter(poll),
	}
	u.obsHandles = newObsHandles(opts.Obs, node.Name())
	u.grid = opts.Grid
	if opts.Storm != nil {
		u.stormQ = storm.NewQueue(*opts.Storm)
		u.resumed = make(map[string]time.Duration)
		if opts.Obs != nil {
			u.stormQ.SetObs(opts.Obs)
		}
	}
	for _, l := range leaves {
		u.leaves = append(u.leaves, l.name)
	}
	b.Register(u.name, func(now time.Duration, msg *bus.Message) {
		panic(fmt.Errorf("dynamo: upper %s received unexpected %q", u.name, msg.Kind))
	})
	engine.Every(poll, "poll:"+u.name, u.poll)
	return u
}

// Metrics returns the controller's protective-action counters.
func (u *AsyncUpper) Metrics() Metrics { return u.metrics }

// Down reports whether the controller is currently crashed.
func (u *AsyncUpper) Down() bool { return u.down }

func (u *AsyncUpper) coordinates() bool {
	return u.mode == ModeGlobal || u.mode == ModePriorityAware || u.mode == ModePostpone
}

// StormQueue returns the controller's admission queue, nil unless storm
// admission is armed. Breaker guards attach to it so charges they pause
// re-enter through admission rather than the guards' own quiet-time resume.
func (u *AsyncUpper) StormQueue() *storm.Queue { return u.stormQ }

func (u *AsyncUpper) crash() {
	u.down = true
	u.metrics.Crashes++
	u.cCrashes.Inc()
	u.agg = make(map[string]AggregateReply)
	u.was = make(map[string]bool)
	if u.stormQ != nil {
		// The in-memory queue dies with the process; racks keep their
		// pending DOD locally and the restart sweep rebuilds it.
		u.stormQ.Reset()
		u.resumed = make(map[string]time.Duration)
	}
}

func (u *AsyncUpper) poll(now time.Duration) {
	up := !u.down
	if u.inj != nil {
		up = u.inj.Up(u.name, now)
	}
	if !up {
		if !u.down {
			u.crash()
		}
		return
	}
	if u.down {
		u.down = false
		u.resync = true
		u.metrics.Restarts++
		u.cRestarts.Inc()
		u.sink.Event(now, u.name, "restart")
	}
	u.gen++
	gen := u.gen
	pending := len(u.leaves)
	evaluated := false
	evalOnce := func(at time.Duration) {
		if evaluated || u.gen != gen || u.down {
			return
		}
		evaluated = true
		u.evaluate(at)
	}
	for _, ep := range u.leaves {
		ep := ep
		u.b.Request(u.name, ep, "aggregate", nil, func(now time.Duration, payload any) {
			u.agg[ep] = payload.(AggregateReply)
			pending--
			if pending == 0 {
				evalOnce(now)
			}
		})
	}
	u.engine.ScheduleAfter(u.evalAfter, "deadline:"+u.name, evalOnce)
}

// leafOf returns the leaf endpoint owning a rack name in the current
// aggregate generation.
func (u *AsyncUpper) leafOf(rackName string) string {
	for _, ep := range u.leaves {
		for _, s := range u.agg[ep].Racks {
			if s.Name == rackName {
				return ep
			}
		}
	}
	return ""
}

// fresh reports whether a snapshot is within the upper's staleness bound.
func (u *AsyncUpper) fresh(s Snapshot, now time.Duration) bool {
	return u.staleAfter <= 0 || now-s.Taken <= u.staleAfter
}

func (u *AsyncUpper) evaluate(now time.Duration) {
	// Deterministic flattened view, stale entries rewritten conservatively
	// (a crashed or unreachable leaf leaves its racks' snapshots aging in
	// the aggregate cache; they are assumed to draw worst case).
	var snaps []Snapshot
	for _, ep := range u.leaves {
		snaps = append(snaps, u.agg[ep].Racks...)
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].Name < snaps[j].Name })
	stale := 0
	for i, s := range snaps {
		if !u.fresh(s, now) {
			u.metrics.StaleTelemetry++
			u.cStale.Inc()
			stale++
			snaps[i] = conservativeView(s, u.cfg)
		}
	}
	if u.sink != nil {
		u.gHeadroom.Set(float64(u.node.Headroom()))
		// One telemetry summary per evaluation generation (per-rack events
		// would flood the flight recorder at fleet scale).
		u.sink.Event(now, u.name, "telemetry",
			"fresh", strconv.Itoa(len(snaps)-stale),
			"stale", strconv.Itoa(stale),
			"headroom_w", strconv.FormatFloat(float64(u.node.Headroom()), 'f', 0, 64))
	}

	if u.resync {
		for _, s := range snaps {
			u.was[s.Name] = s.Charging
			// Rebuild the admission queue a crash wiped: any paused charge
			// still owed re-enters admission from its rack-local pending DOD.
			if u.stormQ != nil && u.fresh(s, now) && !s.Charging && s.PendingDOD > 0 {
				u.stormQ.Enqueue(now, storm.Request{Name: s.Name, Priority: s.Priority, DOD: s.PendingDOD, Since: s.ChargeStart})
			}
		}
		u.resync = false
	} else if u.coordinates() {
		// A generation that planned (or paused a storm) defers protection and
		// admission to the next poll: the directives are in flight and cached
		// setpoints are stale.
		if u.planFresh(now, snaps) {
			return
		}
	}
	u.protect(now, snaps)
	u.admitStorm(now, snaps)
}

func (u *AsyncUpper) planFresh(now time.Duration, snaps []Snapshot) bool {
	var fresh []core.RackInfo
	var it units.Power
	for i, s := range snaps {
		if s.InputUp {
			it += s.ITLoad
		}
		if !u.fresh(s, now) {
			continue
		}
		if u.stormQ != nil {
			if _, granted := u.resumed[s.Name]; granted {
				// Admission grant in flight; observed charging confirms it.
				// Either way this is not a fresh start to re-plan.
				if s.Charging {
					delete(u.resumed, s.Name)
					u.was[s.Name] = true
				}
				continue
			}
			if s.Charging && u.stormQ.Contains(s.Name) {
				// Charging while queued and not granted: a new outage cycle
				// restarted the charge locally (or our pause was lost). The
				// queued request is stale — supersede it and let fresh-start
				// detection below route the charge back through admission.
				u.stormQ.Remove(s.Name)
				u.was[s.Name] = false
			}
			if !s.Charging && s.PendingDOD > 0 && !u.stormQ.Contains(s.Name) {
				// Paused charge nobody is tracking (a guard paused it while
				// detached, or an enqueue was lost to a crash): adopt it.
				u.stormQ.Enqueue(now, storm.Request{Name: s.Name, Priority: s.Priority, DOD: s.PendingDOD, Since: s.ChargeStart})
			}
		}
		if s.Charging && !u.was[s.Name] {
			fresh = append(fresh, core.RackInfo{ID: i, Name: s.Name, Priority: s.Priority, DOD: s.DOD})
		}
		u.was[s.Name] = s.Charging
	}
	if len(fresh) == 0 {
		return false
	}
	deferred := u.grid != nil && u.grid.DeferCharging(now)
	if u.stormQ != nil && (deferred || len(fresh) >= u.stormQ.Config().MinRacks || u.stormQ.Len() > 0) {
		// Correlated start (or a storm already in progress, or the grid
		// policy deferring charge admission): pause the fresh starts into
		// the admission queue instead of planning them. The racks keep
		// charging until the pause lands; leaving was=false means a rack
		// whose pause message is lost shows up fresh again next generation
		// and is re-paused.
		if len(fresh) >= u.stormQ.Config().MinRacks {
			u.stormQ.NoteStorm(now)
		}
		if u.sink != nil {
			u.sink.Event(now, u.name, "storm-pause",
				"starts", strconv.Itoa(len(fresh)),
				"deferred", strconv.FormatBool(deferred))
		}
		byLeaf := map[string][]string{}
		for _, ri := range fresh {
			u.stormQ.Enqueue(now, storm.Request{Name: ri.Name, Priority: ri.Priority, DOD: snaps[ri.ID].DOD, Since: snaps[ri.ID].ChargeStart})
			u.was[ri.Name] = false
			if leaf := u.leafOf(ri.Name); leaf != "" {
				byLeaf[leaf] = append(byLeaf[leaf], ri.Name)
			}
		}
		for _, leaf := range sortedKeys(byLeaf) {
			u.b.Send(u.name, leaf, "pausecharges", byLeaf[leaf])
		}
		return true
	}
	available := u.effLimit(now) - it
	var plan []core.Assignment
	switch u.mode {
	case ModeGlobal:
		plan = core.PlanGlobal(available, fresh, u.cfg)
	default:
		cfg := u.cfg
		cfg.AllowPostpone = u.mode == ModePostpone
		plan = core.PlanPriorityAware(available, fresh, cfg)
	}
	u.metrics.PlansComputed++
	u.cPlans.Inc()
	if u.sink != nil {
		u.sink.Event(now, u.name, "plan",
			"starts", strconv.Itoa(len(fresh)),
			"available_w", strconv.FormatFloat(float64(available), 'f', 0, 64))
	}
	byLeaf := map[string]map[string]units.Current{}
	for _, asg := range plan {
		if asg.DOD <= 0 || asg.Postponed {
			continue
		}
		leaf := u.leafOf(asg.Name)
		if leaf == "" {
			continue
		}
		if byLeaf[leaf] == nil {
			byLeaf[leaf] = map[string]units.Current{}
		}
		byLeaf[leaf][asg.Name] = asg.Current
		u.metrics.OverridesIssued++
		u.cOverrides.Inc()
	}
	for _, leaf := range sortedKeys(byLeaf) {
		u.b.Send(u.name, leaf, "setcurrents", byLeaf[leaf])
	}
	return true
}

// resumeTimeout is how long a resume grant may sit unconfirmed by telemetry
// before it is assumed lost and the request re-enqueued. Several poll round
// trips: long enough for the grant to land and its effect to be read back,
// short enough that a lost grant costs queue time, not the charge.
func (u *AsyncUpper) resumeTimeout() time.Duration { return 4 * u.pollPeriod }

// effLimit is the feed limit planning and admission budget against: the
// breaker limit, further clamped by the interconnection cap when the grid
// signal plane is attached.
func (u *AsyncUpper) effLimit(now time.Duration) units.Power {
	if u.grid != nil {
		return u.grid.EffectiveLimit(now)
	}
	return u.node.Limit()
}

// admitStorm reconciles in-flight resume grants against telemetry, then
// admits the next wave of paused recharges under the breaker's measured
// headroom net of the configured reserve.
func (u *AsyncUpper) admitStorm(now time.Duration, snaps []Snapshot) {
	if u.stormQ == nil {
		return
	}
	for _, s := range snaps {
		t, granted := u.resumed[s.Name]
		if !granted || !u.fresh(s, now) {
			continue
		}
		switch {
		case s.Charging:
			delete(u.resumed, s.Name)
			u.was[s.Name] = true
		case now-t > u.resumeTimeout():
			// Lost resume: back through admission with the rack's own
			// pending DOD (zero means the pause itself never landed, in
			// which case fresh-start detection owns the rack again).
			delete(u.resumed, s.Name)
			if s.PendingDOD > 0 {
				u.stormQ.Enqueue(now, storm.Request{Name: s.Name, Priority: s.Priority, DOD: s.PendingDOD, Since: s.ChargeStart})
			}
		}
	}
	if u.stormQ.Len() == 0 {
		return
	}
	if u.grid != nil && u.grid.DeferCharging(now) {
		// Grid policy says hold: queued recharges wait out the price/carbon
		// spike (the SLA valve in the policy bounds how long).
		return
	}
	// Headroom from the same conservative view protection uses: stale racks
	// are assumed charging at worst case, so staleness under-admits rather
	// than over-admits. The budget derives from the effective feed limit so
	// a shrinking interconnection cap re-scopes every admission wave.
	var wouldBe units.Power
	for _, s := range snaps {
		if s.InputUp {
			wouldBe += s.ITLoad + s.Recharge
		}
	}
	limit := u.effLimit(now)
	budget := limit - wouldBe - u.stormQ.Config().Margin(limit)
	grants := u.stormQ.Admit(now, budget, u.cfg)
	byLeaf := map[string]map[string]units.Current{}
	for _, g := range grants {
		leaf := u.leafOf(g.Name)
		if leaf == "" {
			// Unroutable (the owning leaf's reply never arrived this
			// generation): requeue rather than lose the charge.
			u.stormQ.Enqueue(now, g.Request)
			continue
		}
		if byLeaf[leaf] == nil {
			byLeaf[leaf] = map[string]units.Current{}
		}
		byLeaf[leaf][g.Name] = g.Current
		u.resumed[g.Name] = now
		u.metrics.OverridesIssued++
		u.cOverrides.Inc()
	}
	for _, leaf := range sortedKeys(byLeaf) {
		u.b.Send(u.name, leaf, "resumecharges", byLeaf[leaf])
	}
}

func (u *AsyncUpper) protect(now time.Duration, snaps []Snapshot) {
	var wouldBe units.Power
	for _, s := range snaps {
		if s.InputUp {
			wouldBe += s.Demand + s.Recharge
		}
	}
	excess := wouldBe - u.effLimit(now)
	if excess <= 0 {
		for _, ep := range u.leaves {
			var names []string
			for _, s := range u.agg[ep].Racks {
				names = append(names, s.Name)
			}
			u.b.Send(u.name, ep, "uncaps", names)
		}
		return
	}
	// Battery throttling first, lowest-priority-highest-DOD order.
	var active []core.ActiveCharge
	for i, s := range snaps {
		if s.InputUp && s.Charging {
			active = append(active, core.ActiveCharge{
				RackInfo: core.RackInfo{ID: i, Name: s.Name, Priority: s.Priority, DOD: s.DOD},
				Current:  s.Setpoint,
			})
		}
	}
	ids := core.ThrottleToMinimum(excess, active, u.cfg)
	if len(ids) > 0 {
		u.metrics.ThrottleEvents++
		u.cThrottles.Inc()
		if u.sink != nil {
			u.sink.Event(now, u.name, "throttle",
				"sheds", strconv.Itoa(len(ids)),
				"excess_w", strconv.FormatFloat(float64(excess), 'f', 0, 64))
		}
	}
	min := u.cfg.Surface.MinCurrent()
	byLeaf := map[string]map[string]units.Current{}
	for _, id := range ids {
		s := snaps[id]
		leaf := u.leafOf(s.Name)
		if leaf == "" {
			continue
		}
		if byLeaf[leaf] == nil {
			byLeaf[leaf] = map[string]units.Current{}
		}
		byLeaf[leaf][s.Name] = min
		u.metrics.OverridesIssued++
		u.cOverrides.Inc()
		if u.fresh(s, now) {
			excess -= units.Power(float64(s.Setpoint-min) * u.cfg.WattsPerAmp)
		}
	}
	for _, leaf := range sortedKeys(byLeaf) {
		u.b.Send(u.name, leaf, "setcurrents", byLeaf[leaf])
	}
	if excess <= 0 {
		return
	}
	// Server capping as the last resort, delegated to the leaves.
	order := append([]Snapshot(nil), snaps...)
	sort.SliceStable(order, func(i, j int) bool { return order[i].Priority > order[j].Priority })
	caps := map[string]map[string]units.Power{}
	var applied, it units.Power
	for _, s := range order {
		if s.InputUp {
			it += s.ITLoad
		}
	}
	for _, s := range order {
		if excess <= 0 {
			break
		}
		if !s.InputUp {
			continue
		}
		cut := s.Demand
		if cut > excess {
			cut = excess
		}
		leaf := u.leafOf(s.Name)
		if leaf == "" {
			continue
		}
		if caps[leaf] == nil {
			caps[leaf] = map[string]units.Power{}
		}
		caps[leaf][s.Name] = s.Demand - cut
		excess -= cut
		applied += cut
	}
	for _, leaf := range sortedKeys(caps) {
		u.b.Send(u.name, leaf, "caps", caps[leaf])
	}
	if applied > 0 && u.sink != nil {
		u.sink.Event(now, u.name, "cap",
			"applied_w", strconv.FormatFloat(float64(applied), 'f', 0, 64))
	}
	if applied > u.metrics.MaxCapping {
		u.metrics.MaxCapping = applied
		if it > 0 {
			u.metrics.MaxCappingFraction = units.Fraction(float64(applied) / float64(it))
		}
	}
}

// WireBusFaults attaches injector-driven perturbation to the bus carrying
// the async control plane: telemetry messages ("read"/"aggregate" requests
// and all replies) are subject to read loss; command messages (overrides,
// caps, heartbeats, leaf directives) are subject to command loss, delay, and
// duplication.
func WireBusFaults(b *bus.Bus, inj *faults.Injector) {
	b.Perturb = func(now time.Duration, msg *bus.Message) (bool, time.Duration, int) {
		telemetry := msg.Kind == "read" || msg.Kind == "aggregate" ||
			len(msg.Kind) > 6 && msg.Kind[:6] == "reply:"
		if telemetry {
			if inj.DropRead() {
				return true, 0, 0
			}
			return false, 0, 0
		}
		if inj.DropCommand() {
			return true, 0, 0
		}
		dup := 0
		if inj.DupCommand() {
			dup = 1
		}
		return false, inj.CommandDelay(), dup
	}
}
