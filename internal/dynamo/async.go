package dynamo

import (
	"fmt"
	"sort"
	"time"

	"coordcharge/internal/bus"
	"coordcharge/internal/core"
	"coordcharge/internal/power"
	"coordcharge/internal/rack"
	"coordcharge/internal/sim"
	"coordcharge/internal/units"
)

// This file implements the distributed variant of the control plane: the
// paper's actual deployment shape, where agents on TOR switches and the
// controllers mirroring the power hierarchy are separate processes
// exchanging messages over the network (§IV-B). The synchronous Controller
// in dynamo.go models the same logic with direct reads — convenient for
// large parameter sweeps; this variant makes polling cadence, network
// latency, and message loss first-class, and upper-level controllers
// communicate exclusively through leaf controllers, as in production.
//
// Protocol, all over internal/bus:
//
//	controller → agent   "read"        → reply Snapshot
//	controller → agent   "override"    (units.Current; one-way)
//	controller → agent   "cap"/"uncap" (CapRequest; one-way)
//	upper → leaf         "aggregate"   → reply AggregateReply
//	upper → leaf         "setcurrents" (map[string]units.Current; one-way)
//	upper → leaf         "caps"        (map[string]units.Power; one-way)

// Snapshot is an agent's rack-state report.
type Snapshot struct {
	Name     string
	Priority rack.Priority
	Demand   units.Power
	ITLoad   units.Power
	Recharge units.Power
	DOD      units.Fraction
	Charging bool
	InputUp  bool
	Setpoint units.Current
}

// CapRequest asks an agent to cap its rack's servers on behalf of a
// controller.
type CapRequest struct {
	Source string
	Level  units.Power
}

// AggregateReply is a leaf controller's answer to an upper controller: the
// aggregate draw under its breaker plus the latest per-rack snapshots.
type AggregateReply struct {
	Power units.Power
	Racks []Snapshot
}

// AsyncAgent is the message-driven per-rack request handler.
type AsyncAgent struct {
	name   string
	r      *rack.Rack
	b      *bus.Bus
	engine *sim.Engine
	settle time.Duration
}

// AgentEndpoint returns the bus endpoint name for a rack.
func AgentEndpoint(rackName string) string { return "agent/" + rackName }

// NewAsyncAgent registers a rack's agent on the bus. settle is the charger's
// command-settling time (the ~20 s of Fig 11), applied after the override
// message is delivered.
func NewAsyncAgent(b *bus.Bus, engine *sim.Engine, r *rack.Rack, settle time.Duration) *AsyncAgent {
	a := &AsyncAgent{name: AgentEndpoint(r.Name()), r: r, b: b, engine: engine, settle: settle}
	b.Register(a.name, a.handle)
	return a
}

func (a *AsyncAgent) handle(now time.Duration, msg *bus.Message) {
	switch msg.Kind {
	case "read":
		a.b.Reply(now, msg, Snapshot{
			Name:     a.r.Name(),
			Priority: a.r.Priority(),
			Demand:   a.r.Demand(),
			ITLoad:   a.r.ITLoad(),
			Recharge: a.r.RechargePower(),
			DOD:      a.r.LastDOD(),
			Charging: a.r.Charging(),
			InputUp:  a.r.InputUp(),
			Setpoint: a.r.Pack().Setpoint(),
		})
	case "override":
		i := msg.Payload.(units.Current)
		if a.settle <= 0 {
			a.r.OverrideCurrent(i)
			return
		}
		a.engine.ScheduleAfter(a.settle, "settle:"+a.name, func(time.Duration) {
			a.r.OverrideCurrent(i)
		})
	case "cap":
		req := msg.Payload.(CapRequest)
		a.r.Cap(req.Source, req.Level)
	case "uncap":
		a.r.Uncap(msg.Payload.(string))
	default:
		panic(fmt.Errorf("dynamo: agent %s received unknown message kind %q", a.name, msg.Kind))
	}
}

// AsyncLeaf is the message-driven leaf controller: it protects one RPP by
// polling its agents, optionally plans charging sequences, and executes
// current/cap directives from upper-level controllers.
type AsyncLeaf struct {
	name       string
	node       *power.Node
	b          *bus.Bus
	engine     *sim.Engine
	cfg        core.Config
	mode       Mode
	plans      bool
	pollPeriod time.Duration
	agents     []string // agent endpoints, index-aligned with rackNames
	cache      map[string]Snapshot
	was        map[string]bool
	metrics    Metrics
}

// LeafEndpoint returns the bus endpoint name for a leaf controller.
func LeafEndpoint(nodeName string) string { return "leaf/" + nodeName }

// NewAsyncLeaf registers a leaf controller polling the given agents every
// poll period. plans selects whether this controller computes initial
// charging plans (true for a standalone row; false when an upper controller
// owns planning).
func NewAsyncLeaf(b *bus.Bus, engine *sim.Engine, node *power.Node, agentRacks []*rack.Rack, mode Mode, cfg core.Config, plans bool, poll time.Duration) *AsyncLeaf {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	l := &AsyncLeaf{
		name:       LeafEndpoint(node.Name()),
		node:       node,
		b:          b,
		engine:     engine,
		cfg:        cfg,
		mode:       mode,
		plans:      plans,
		pollPeriod: poll,
		cache:      make(map[string]Snapshot),
		was:        make(map[string]bool),
	}
	for _, r := range agentRacks {
		l.agents = append(l.agents, AgentEndpoint(r.Name()))
	}
	b.Register(l.name, l.handle)
	engine.Every(poll, "poll:"+l.name, l.poll)
	return l
}

// Metrics returns the controller's protective-action counters.
func (l *AsyncLeaf) Metrics() Metrics { return l.metrics }

// poll requests fresh snapshots from every agent; the last reply of a round
// triggers evaluation, so decisions always see a coherent poll generation.
func (l *AsyncLeaf) poll(time.Duration) {
	pending := len(l.agents)
	for _, ep := range l.agents {
		l.b.Request(l.name, ep, "read", nil, func(now time.Duration, payload any) {
			snap := payload.(Snapshot)
			l.cache[snap.Name] = snap
			pending--
			if pending == 0 {
				l.evaluate(now)
			}
		})
	}
}

// sortedSnapshots returns the cache in deterministic (name) order.
func (l *AsyncLeaf) sortedSnapshots() []Snapshot {
	out := make([]Snapshot, 0, len(l.cache))
	for _, s := range l.cache {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// evaluate runs the leaf's control logic over the freshly completed poll.
// A generation that just planned skips protection: the plan's overrides are
// still in flight and the cached setpoints are stale; the next poll sees
// their effect (plan, then monitor — the paper's sequencing).
func (l *AsyncLeaf) evaluate(now time.Duration) {
	snaps := l.sortedSnapshots()
	if l.plans && l.coordinates() && l.planFresh(snaps) {
		return
	}
	l.protect(now, snaps)
}

func (l *AsyncLeaf) coordinates() bool {
	return l.mode == ModeGlobal || l.mode == ModePriorityAware || l.mode == ModePostpone
}

// planFresh detects racks whose charge began since the previous poll and
// plans their currents from this breaker's available power. It reports
// whether a plan was issued.
func (l *AsyncLeaf) planFresh(snaps []Snapshot) bool {
	var fresh []core.RackInfo
	var it units.Power
	for i, s := range snaps {
		if s.InputUp {
			it += s.ITLoad
		}
		if s.Charging && !l.was[s.Name] {
			fresh = append(fresh, core.RackInfo{ID: i, Name: s.Name, Priority: s.Priority, DOD: s.DOD})
		}
		l.was[s.Name] = s.Charging
	}
	if len(fresh) == 0 {
		return false
	}
	available := l.node.Limit() - it
	var plan []core.Assignment
	switch l.mode {
	case ModeGlobal:
		plan = core.PlanGlobal(available, fresh, l.cfg)
	default:
		cfg := l.cfg
		cfg.AllowPostpone = l.mode == ModePostpone
		plan = core.PlanPriorityAware(available, fresh, cfg)
	}
	l.metrics.PlansComputed++
	for _, asg := range plan {
		if asg.DOD <= 0 || asg.Postponed {
			continue
		}
		l.b.Send(l.name, AgentEndpoint(asg.Name), "override", asg.Current)
		l.metrics.OverridesIssued++
	}
	return true
}

// protect throttles and caps from cached state when the breaker is
// overloaded, mirroring the synchronous controller's policy.
func (l *AsyncLeaf) protect(now time.Duration, snaps []Snapshot) {
	var wouldBe units.Power
	for _, s := range snaps {
		if s.InputUp {
			wouldBe += s.Demand + s.Recharge
		}
	}
	excess := wouldBe - l.node.Limit()
	if excess <= 0 {
		for _, s := range snaps {
			l.b.Send(l.name, AgentEndpoint(s.Name), "uncap", l.name)
		}
		return
	}
	if l.coordinates() {
		var active []core.ActiveCharge
		for i, s := range snaps {
			if s.InputUp && s.Charging {
				active = append(active, core.ActiveCharge{
					RackInfo: core.RackInfo{ID: i, Name: s.Name, Priority: s.Priority, DOD: s.DOD},
					Current:  s.Setpoint,
				})
			}
		}
		ids := core.ThrottleToMinimum(excess, active, l.cfg)
		if len(ids) > 0 {
			l.metrics.ThrottleEvents++
		}
		min := l.cfg.Surface.MinCurrent()
		for _, id := range ids {
			s := snaps[id]
			l.b.Send(l.name, AgentEndpoint(s.Name), "override", min)
			l.metrics.OverridesIssued++
			excess -= units.Power(float64(s.Setpoint-min) * l.cfg.WattsPerAmp)
		}
	}
	if excess <= 0 {
		return
	}
	l.applyCaps(now, snaps, excess)
}

// applyCaps distributes a server power reduction lowest-priority-first via
// cap messages.
func (l *AsyncLeaf) applyCaps(_ time.Duration, snaps []Snapshot, needed units.Power) {
	order := append([]Snapshot(nil), snaps...)
	sort.SliceStable(order, func(i, j int) bool { return order[i].Priority > order[j].Priority })
	var applied, it units.Power
	for _, s := range order {
		if s.InputUp {
			it += s.ITLoad
		}
	}
	for _, s := range order {
		if needed <= 0 {
			l.b.Send(l.name, AgentEndpoint(s.Name), "uncap", l.name)
			continue
		}
		if !s.InputUp {
			continue
		}
		cut := s.Demand
		if cut > needed {
			cut = needed
		}
		l.b.Send(l.name, AgentEndpoint(s.Name), "cap", CapRequest{Source: l.name, Level: s.Demand - cut})
		needed -= cut
		applied += cut
	}
	if applied > l.metrics.MaxCapping {
		l.metrics.MaxCapping = applied
		if it > 0 {
			l.metrics.MaxCappingFraction = units.Fraction(float64(applied) / float64(it))
		}
	}
	// CappedEnergy integrates at the poll period: caps hold until at least
	// the next generation.
	l.metrics.CappedEnergy += units.EnergyOver(applied, l.pollPeriod)
}

// handle serves upper-controller requests.
func (l *AsyncLeaf) handle(now time.Duration, msg *bus.Message) {
	switch msg.Kind {
	case "aggregate":
		snaps := l.sortedSnapshots()
		var total units.Power
		for _, s := range snaps {
			if s.InputUp {
				total += s.ITLoad + s.Recharge
			}
		}
		l.b.Reply(now, msg, AggregateReply{Power: total, Racks: snaps})
	case "setcurrents":
		for name, i := range msg.Payload.(map[string]units.Current) {
			l.b.Send(l.name, AgentEndpoint(name), "override", i)
			l.metrics.OverridesIssued++
		}
	case "caps":
		for name, level := range msg.Payload.(map[string]units.Power) {
			l.b.Send(l.name, AgentEndpoint(name), "cap", CapRequest{Source: l.name + "/upper", Level: level})
		}
	case "uncaps":
		for _, name := range msg.Payload.([]string) {
			l.b.Send(l.name, AgentEndpoint(name), "uncap", l.name+"/upper")
		}
	default:
		panic(fmt.Errorf("dynamo: leaf %s received unknown message kind %q", l.name, msg.Kind))
	}
}

// AsyncUpper is the message-driven upper-level controller (SB or MSB): it
// aggregates exclusively through leaf controllers, plans charging sequences
// at the hierarchy root, and directs leaves to throttle or cap on overload.
type AsyncUpper struct {
	name    string
	node    *power.Node
	b       *bus.Bus
	cfg     core.Config
	mode    Mode
	leaves  []string
	agg     map[string]AggregateReply
	was     map[string]bool
	metrics Metrics
}

// UpperEndpoint returns the bus endpoint name for an upper controller.
func UpperEndpoint(nodeName string) string { return "ctl/" + nodeName }

// NewAsyncUpper registers an upper controller polling the given leaf
// controllers every poll period.
func NewAsyncUpper(b *bus.Bus, engine *sim.Engine, node *power.Node, leaves []*AsyncLeaf, mode Mode, cfg core.Config, poll time.Duration) *AsyncUpper {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	u := &AsyncUpper{
		name: UpperEndpoint(node.Name()),
		node: node,
		b:    b,
		cfg:  cfg,
		mode: mode,
		agg:  make(map[string]AggregateReply),
		was:  make(map[string]bool),
	}
	for _, l := range leaves {
		u.leaves = append(u.leaves, l.name)
	}
	b.Register(u.name, func(now time.Duration, msg *bus.Message) {
		panic(fmt.Errorf("dynamo: upper %s received unexpected %q", u.name, msg.Kind))
	})
	engine.Every(poll, "poll:"+u.name, u.poll)
	return u
}

// Metrics returns the controller's protective-action counters.
func (u *AsyncUpper) Metrics() Metrics { return u.metrics }

func (u *AsyncUpper) poll(time.Duration) {
	pending := len(u.leaves)
	for _, ep := range u.leaves {
		ep := ep
		u.b.Request(u.name, ep, "aggregate", nil, func(now time.Duration, payload any) {
			u.agg[ep] = payload.(AggregateReply)
			pending--
			if pending == 0 {
				u.evaluate(now)
			}
		})
	}
}

// leafOf returns the leaf endpoint owning a rack name in the current
// aggregate generation.
func (u *AsyncUpper) leafOf(rackName string) string {
	for ep, rep := range u.agg {
		for _, s := range rep.Racks {
			if s.Name == rackName {
				return ep
			}
		}
	}
	return ""
}

func (u *AsyncUpper) evaluate(now time.Duration) {
	// Deterministic flattened view.
	var snaps []Snapshot
	for _, ep := range u.leaves {
		snaps = append(snaps, u.agg[ep].Racks...)
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].Name < snaps[j].Name })

	if u.mode == ModeGlobal || u.mode == ModePriorityAware || u.mode == ModePostpone {
		// A generation that planned defers protection to the next poll: the
		// overrides are in flight and cached setpoints are stale.
		if u.planFresh(snaps) {
			return
		}
	}
	u.protect(now, snaps)
}

func (u *AsyncUpper) planFresh(snaps []Snapshot) bool {
	var fresh []core.RackInfo
	var it units.Power
	for i, s := range snaps {
		if s.InputUp {
			it += s.ITLoad
		}
		if s.Charging && !u.was[s.Name] {
			fresh = append(fresh, core.RackInfo{ID: i, Name: s.Name, Priority: s.Priority, DOD: s.DOD})
		}
		u.was[s.Name] = s.Charging
	}
	if len(fresh) == 0 {
		return false
	}
	available := u.node.Limit() - it
	var plan []core.Assignment
	switch u.mode {
	case ModeGlobal:
		plan = core.PlanGlobal(available, fresh, u.cfg)
	default:
		cfg := u.cfg
		cfg.AllowPostpone = u.mode == ModePostpone
		plan = core.PlanPriorityAware(available, fresh, cfg)
	}
	u.metrics.PlansComputed++
	byLeaf := map[string]map[string]units.Current{}
	for _, asg := range plan {
		if asg.DOD <= 0 || asg.Postponed {
			continue
		}
		leaf := u.leafOf(asg.Name)
		if leaf == "" {
			continue
		}
		if byLeaf[leaf] == nil {
			byLeaf[leaf] = map[string]units.Current{}
		}
		byLeaf[leaf][asg.Name] = asg.Current
		u.metrics.OverridesIssued++
	}
	for leaf, currents := range byLeaf {
		u.b.Send(u.name, leaf, "setcurrents", currents)
	}
	return true
}

func (u *AsyncUpper) protect(_ time.Duration, snaps []Snapshot) {
	var wouldBe units.Power
	for _, s := range snaps {
		if s.InputUp {
			wouldBe += s.Demand + s.Recharge
		}
	}
	excess := wouldBe - u.node.Limit()
	if excess <= 0 {
		for _, ep := range u.leaves {
			var names []string
			for _, s := range u.agg[ep].Racks {
				names = append(names, s.Name)
			}
			u.b.Send(u.name, ep, "uncaps", names)
		}
		return
	}
	// Battery throttling first, lowest-priority-highest-DOD order.
	var active []core.ActiveCharge
	for i, s := range snaps {
		if s.InputUp && s.Charging {
			active = append(active, core.ActiveCharge{
				RackInfo: core.RackInfo{ID: i, Name: s.Name, Priority: s.Priority, DOD: s.DOD},
				Current:  s.Setpoint,
			})
		}
	}
	ids := core.ThrottleToMinimum(excess, active, u.cfg)
	if len(ids) > 0 {
		u.metrics.ThrottleEvents++
	}
	min := u.cfg.Surface.MinCurrent()
	byLeaf := map[string]map[string]units.Current{}
	for _, id := range ids {
		s := snaps[id]
		leaf := u.leafOf(s.Name)
		if leaf == "" {
			continue
		}
		if byLeaf[leaf] == nil {
			byLeaf[leaf] = map[string]units.Current{}
		}
		byLeaf[leaf][s.Name] = min
		u.metrics.OverridesIssued++
		excess -= units.Power(float64(s.Setpoint-min) * u.cfg.WattsPerAmp)
	}
	for leaf, currents := range byLeaf {
		u.b.Send(u.name, leaf, "setcurrents", currents)
	}
	if excess <= 0 {
		return
	}
	// Server capping as the last resort, delegated to the leaves.
	order := append([]Snapshot(nil), snaps...)
	sort.SliceStable(order, func(i, j int) bool { return order[i].Priority > order[j].Priority })
	caps := map[string]map[string]units.Power{}
	var applied, it units.Power
	for _, s := range order {
		if s.InputUp {
			it += s.ITLoad
		}
	}
	for _, s := range order {
		if excess <= 0 {
			break
		}
		if !s.InputUp {
			continue
		}
		cut := s.Demand
		if cut > excess {
			cut = excess
		}
		leaf := u.leafOf(s.Name)
		if leaf == "" {
			continue
		}
		if caps[leaf] == nil {
			caps[leaf] = map[string]units.Power{}
		}
		caps[leaf][s.Name] = s.Demand - cut
		excess -= cut
		applied += cut
	}
	for leaf, m := range caps {
		u.b.Send(u.name, leaf, "caps", m)
	}
	if applied > u.metrics.MaxCapping {
		u.metrics.MaxCapping = applied
		if it > 0 {
			u.metrics.MaxCappingFraction = units.Fraction(float64(applied) / float64(it))
		}
	}
}
