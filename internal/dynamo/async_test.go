package dynamo

import (
	"fmt"
	"testing"
	"time"

	"coordcharge/internal/battery"
	"coordcharge/internal/bus"
	"coordcharge/internal/charger"
	"coordcharge/internal/core"
	"coordcharge/internal/power"
	"coordcharge/internal/rack"
	"coordcharge/internal/sim"
	"coordcharge/internal/units"
)

// asyncRow wires a standalone RPP row onto a bus: engine, bus, racks,
// agents, and a planning leaf controller.
func asyncRow(t *testing.T, prios []rack.Priority, mode Mode, limit units.Power, netLatency, settle time.Duration) (*sim.Engine, *bus.Bus, []*rack.Rack, *AsyncLeaf) {
	t.Helper()
	engine := sim.NewEngine()
	b := bus.New(engine, bus.ConstantLatency(netLatency))
	rpp := power.NewNode("rpp", power.LevelRPP, limit)
	racks := make([]*rack.Rack, len(prios))
	for i, p := range prios {
		racks[i] = rack.New(fmt.Sprintf("ar%02d", i), p, charger.Variable{}, battery.Fig5Surface())
		rpp.AttachLoad(racks[i])
		NewAsyncAgent(b, engine, racks[i], settle)
	}
	leaf := NewAsyncLeaf(b, engine, rpp, racks, mode, core.DefaultConfig(), true, 3*time.Second)
	return engine, b, racks, leaf
}

// driveAsync advances racks and the engine together (racks are stepped by
// the test loop; the control plane runs purely off bus/engine events).
func driveAsync(engine *sim.Engine, racks []*rack.Rack, from, until time.Duration, step time.Duration) {
	for now := from; now <= until; now += step {
		for _, r := range racks {
			r.Step(now, step)
		}
		engine.Run(now)
	}
}

func TestAsyncAgentReadAndOverride(t *testing.T) {
	engine, b, racks, _ := asyncRow(t, []rack.Priority{rack.P2}, ModeNone, power.DefaultRPPLimit, 10*time.Millisecond, 0)
	racks[0].SetDemand(9 * units.Kilowatt)
	racks[0].LoseInput(0)
	racks[0].Step(45*time.Second, 45*time.Second)
	racks[0].RestoreInput(45 * time.Second)
	engine.ScheduleAt(45*time.Second, "sync", func(time.Duration) {})
	engine.Run(45 * time.Second)

	var snap Snapshot
	got := false
	b.Request("test", AgentEndpoint(racks[0].Name()), "read", nil, func(_ time.Duration, payload any) {
		snap = payload.(Snapshot)
		got = true
	})
	engine.Run(46 * time.Second)
	if !got {
		t.Fatal("no read reply")
	}
	if !snap.Charging || snap.Setpoint != 2 || snap.Priority != rack.P2 {
		t.Errorf("snapshot = %+v", snap)
	}
	b.Send("test", AgentEndpoint(racks[0].Name()), "override", units.Current(1))
	engine.Run(47 * time.Second)
	if got := racks[0].Pack().Setpoint(); got != 1 {
		t.Errorf("setpoint after override = %v", got)
	}
}

// The Fig 10 prototype over the distributed plane: the leaf controller
// discovers the charge via polling and overrides P1 to 2 A, P2/P3 to 1 A —
// within a few poll periods rather than instantly.
func TestAsyncLeafPlansFig10(t *testing.T) {
	prios := []rack.Priority{
		rack.P1, rack.P1, rack.P1, rack.P2, rack.P2, rack.P3,
	}
	engine, _, racks, leaf := asyncRow(t, prios, ModePriorityAware, power.DefaultRPPLimit, 50*time.Millisecond, 0)
	for _, r := range racks {
		r.SetDemand(9 * units.Kilowatt)
	}
	driveAsync(engine, racks, time.Second, 30*time.Second, time.Second)
	for _, r := range racks {
		r.LoseInput(30 * time.Second)
	}
	driveAsync(engine, racks, 31*time.Second, 36*time.Second, time.Second)
	for _, r := range racks {
		r.RestoreInput(36 * time.Second)
	}
	// Two poll periods plus propagation are ample.
	driveAsync(engine, racks, 37*time.Second, 50*time.Second, time.Second)
	for i, r := range racks {
		want := units.Current(1)
		if r.Priority() == rack.P1 {
			want = 2
		}
		if got := r.Pack().Setpoint(); got != want {
			t.Errorf("rack %d (%v) setpoint = %v, want %v", i, r.Priority(), got, want)
		}
	}
	if leaf.Metrics().PlansComputed != 1 {
		t.Errorf("plans = %d, want 1", leaf.Metrics().PlansComputed)
	}
	if leaf.Metrics().OverridesIssued != len(prios) {
		t.Errorf("overrides = %d, want %d", leaf.Metrics().OverridesIssued, len(prios))
	}
}

// Command settling delays the override's effect (Fig 11), not its planning.
func TestAsyncAgentSettleLatency(t *testing.T) {
	engine, _, racks, _ := asyncRow(t, []rack.Priority{rack.P3}, ModePriorityAware, power.DefaultRPPLimit, 10*time.Millisecond, 20*time.Second)
	racks[0].SetDemand(9 * units.Kilowatt)
	racks[0].LoseInput(0)
	driveAsync(engine, racks, time.Second, 5*time.Second, time.Second)
	racks[0].RestoreInput(5 * time.Second)
	// Find when the setpoint first becomes 1 A.
	var landed time.Duration
	for now := 6 * time.Second; now <= 90*time.Second; now += time.Second {
		racks[0].Step(now, time.Second)
		engine.Run(now)
		if landed == 0 && racks[0].Pack().Setpoint() == 1 {
			landed = now
		}
	}
	if landed == 0 {
		t.Fatal("override never landed")
	}
	// Restore at 5 s + poll ≤3 s + settle 20 s → ≥25 s, ≤ ~32 s.
	if landed < 25*time.Second || landed > 35*time.Second {
		t.Errorf("override landed at %v, want ~25-32 s", landed)
	}
}

// A post-plan IT load rise overloads the leaf's breaker: the controller
// throttles the lowest-priority rack first, all through messages, without
// touching the P1 rack.
func TestAsyncLeafProtects(t *testing.T) {
	prios := []rack.Priority{rack.P1, rack.P3}
	// Limit sized so the initial plan (P1 at 5 A, P3 at 2 A over 23 kW of
	// IT) just fits.
	engine, _, racks, leaf := asyncRow(t, prios, ModePriorityAware, 23*units.Kilowatt+2660, 10*time.Millisecond, 0)
	for _, r := range racks {
		r.SetDemand(11500 * units.Watt)
		r.LoseInput(0)
	}
	driveAsync(engine, racks, time.Second, 90*time.Second, time.Second)
	for _, r := range racks {
		r.RestoreInput(90 * time.Second)
	}
	driveAsync(engine, racks, 91*time.Second, 100*time.Second, time.Second)
	if got := racks[0].Pack().Setpoint(); got != 5 {
		t.Fatalf("P1 planned setpoint = %v, want 5 A (deep discharge)", got)
	}
	if got := racks[1].Pack().Setpoint(); got != 2 {
		t.Fatalf("P3 planned setpoint = %v, want 2 A", got)
	}
	// Diurnal drift: +150 W per rack overloads the breaker by ~300 W —
	// within what throttling the P3 rack alone (380 W) recovers.
	for _, r := range racks {
		r.SetDemand(11650 * units.Watt)
	}
	driveAsync(engine, racks, 101*time.Second, 115*time.Second, time.Second)
	if got := racks[1].Pack().Setpoint(); got != 1 {
		t.Errorf("P3 setpoint = %v, want throttled to 1 A", got)
	}
	if got := racks[0].Pack().Setpoint(); got != 5 {
		t.Errorf("P1 setpoint = %v, want untouched 5 A", got)
	}
	if leaf.Metrics().ThrottleEvents == 0 {
		t.Error("no throttle event recorded")
	}
	if leaf.Metrics().MaxCapping != 0 {
		t.Errorf("capping = %v, want 0 (throttling sufficed)", leaf.Metrics().MaxCapping)
	}
}

// A two-level hierarchy: the upper controller aggregates through leaves and
// plans at the root; leaves forward its directives to agents.
func TestAsyncUpperPlansThroughLeaves(t *testing.T) {
	engine := sim.NewEngine()
	b := bus.New(engine, bus.ConstantLatency(20*time.Millisecond))
	msb := power.NewNode("msb", power.LevelMSB, 200*units.Kilowatt)
	var racks []*rack.Rack
	var leaves []*AsyncLeaf
	for li := 0; li < 2; li++ {
		rpp := msb.AddChild(power.NewNode(fmt.Sprintf("rpp%d", li), power.LevelRPP, power.DefaultRPPLimit))
		var leafRacks []*rack.Rack
		for i := 0; i < 3; i++ {
			r := rack.New(fmt.Sprintf("u%d%d", li, i), rack.Priority(1+i), charger.Variable{}, battery.Fig5Surface())
			r.SetDemand(9 * units.Kilowatt)
			rpp.AttachLoad(r)
			NewAsyncAgent(b, engine, r, 0)
			leafRacks = append(leafRacks, r)
			racks = append(racks, r)
		}
		// Leaves do not plan: the MSB controller owns planning.
		leaves = append(leaves, NewAsyncLeaf(b, engine, rpp, leafRacks, ModePriorityAware, core.DefaultConfig(), false, 3*time.Second))
	}
	upper := NewAsyncUpper(b, engine, msb, leaves, ModePriorityAware, core.DefaultConfig(), 6*time.Second)

	driveAsync(engine, racks, time.Second, 30*time.Second, time.Second)
	for _, r := range racks {
		r.LoseInput(30 * time.Second)
	}
	driveAsync(engine, racks, 31*time.Second, 36*time.Second, time.Second)
	for _, r := range racks {
		r.RestoreInput(36 * time.Second)
	}
	// Leaf poll (3 s) feeds the upper's aggregate poll (6 s): allow a few
	// rounds for discovery and override propagation.
	driveAsync(engine, racks, 37*time.Second, 70*time.Second, time.Second)

	if upper.Metrics().PlansComputed == 0 {
		t.Fatal("upper controller never planned")
	}
	for _, r := range racks {
		want := units.Current(1)
		if r.Priority() == rack.P1 {
			want = 2
		}
		if got := r.Pack().Setpoint(); got != want {
			t.Errorf("%s (%v) setpoint = %v, want %v", r.Name(), r.Priority(), got, want)
		}
	}
}

// Message loss degrades gracefully: a lossy bus still converges once polls
// get through (the next poll generation retries everything).
func TestAsyncSurvivesMessageLoss(t *testing.T) {
	engine, b, racks, _ := asyncRow(t, []rack.Priority{rack.P1, rack.P3}, ModePriorityAware, power.DefaultRPPLimit, 10*time.Millisecond, 0)
	drop := true
	b.DropFilter = func(m *bus.Message) bool {
		// Drop the first poll generation's reads entirely.
		return drop && m.Kind == "read"
	}
	for _, r := range racks {
		r.SetDemand(9 * units.Kilowatt)
		r.LoseInput(0)
	}
	driveAsync(engine, racks, time.Second, 5*time.Second, time.Second)
	for _, r := range racks {
		r.RestoreInput(5 * time.Second)
	}
	driveAsync(engine, racks, 6*time.Second, 9*time.Second, time.Second)
	drop = false // network heals
	driveAsync(engine, racks, 10*time.Second, 25*time.Second, time.Second)
	if got := racks[0].Pack().Setpoint(); got != 2 {
		t.Errorf("P1 setpoint after healing = %v, want 2 A", got)
	}
	if b.Dropped() == 0 {
		t.Error("drop filter never engaged")
	}
}
