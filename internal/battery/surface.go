package battery

import (
	"fmt"
	"math"
	"sort"
	"time"

	"coordcharge/internal/units"
)

// Surface is an empirical charge-time surface T(I, DOD): the lab-measured
// "charging time versus depth of discharge for varying charging currents"
// data of the paper's Fig 5, with bilinear interpolation between grid
// points. The paper computes SLA charging currents "by linearly
// interpolating the BBU charging time data in Fig 5" (§IV-A), and its own
// simulation uses the same table (§V-B1); this type is the reproduction of
// that table.
//
// The surface deliberately encodes charger-firmware behaviour the ideal
// electrochemical model (Params/BBU) cannot: measured low-current charges
// are slow even at small depths of discharge (the paper's Fig 9b requires
// >30 min at 1 A near 0 % DOD, which is why P1 racks get 2 A overrides in
// the Fig 10 prototype).
type Surface struct {
	currents []float64   // ascending, amperes
	dods     []float64   // ascending, fraction of full discharge
	minutes  [][]float64 // minutes[di][ci] = charge time at dods[di], currents[ci]
}

// NewSurface builds a surface from a grid of charge times in minutes,
// indexed [dod][current]. It validates that the grid is rectangular,
// monotone nonincreasing in current and nondecreasing in DOD.
func NewSurface(currents, dods []float64, minutes [][]float64) (*Surface, error) {
	if len(currents) < 2 || len(dods) < 2 {
		return nil, fmt.Errorf("battery: surface needs ≥2 currents and ≥2 DODs, got %d×%d", len(currents), len(dods))
	}
	if !sort.Float64sAreSorted(currents) || !sort.Float64sAreSorted(dods) {
		return nil, fmt.Errorf("battery: surface axes must be ascending")
	}
	if len(minutes) != len(dods) {
		return nil, fmt.Errorf("battery: surface has %d rows, want %d", len(minutes), len(dods))
	}
	for di, row := range minutes {
		if len(row) != len(currents) {
			return nil, fmt.Errorf("battery: surface row %d has %d cols, want %d", di, len(row), len(currents))
		}
		for ci, v := range row {
			if v < 0 {
				return nil, fmt.Errorf("battery: negative charge time at [%d][%d]", di, ci)
			}
			if ci > 0 && v > row[ci-1]+1e-9 {
				return nil, fmt.Errorf("battery: charge time not monotone in current at dod=%v between %vA and %vA", dods[di], currents[ci-1], currents[ci])
			}
			if di > 0 && v < minutes[di-1][ci]-1e-9 {
				return nil, fmt.Errorf("battery: charge time not monotone in DOD at %vA between dod=%v and dod=%v", currents[ci], dods[di-1], dods[di])
			}
		}
	}
	return &Surface{currents: currents, dods: dods, minutes: minutes}, nil
}

// Fig5Surface returns the reconstruction of the paper's Fig 5 lab data.
// Anchor points it honours:
//
//   - 5 A, 100 % DOD: ~36 min (Fig 3), flat ≈15 min region below ~22 % DOD;
//   - 4 A, 70 % DOD: ~40 min; 2 A, ≤50 % DOD: ≤~40 min (§III-B);
//   - 1 A: "considerably high" at every DOD (≈50 min floor, >2 h full);
//   - Eq 1's variable current always completes within the 45-minute bound;
//   - 2 A meets the 30-minute P1 SLA at low DOD while 1 A does not, and 1 A
//     meets the 60-minute P2 SLA at low DOD (Figs 9b and 10).
func Fig5Surface() *Surface {
	currents := []float64{1, 2, 3, 4, 5}
	dods := []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	minutes := [][]float64{
		//  1A    2A    3A    4A    5A
		{50.0, 26.0, 20.0, 17.0, 15.0},  // 0 %
		{52.0, 27.0, 20.5, 17.0, 15.0},  // 10 %
		{56.0, 29.0, 21.5, 17.5, 15.5},  // 20 %
		{62.0, 32.0, 24.0, 19.5, 17.5},  // 30 %
		{70.0, 36.0, 28.0, 22.5, 20.0},  // 40 %
		{80.0, 40.0, 32.0, 25.5, 22.5},  // 50 %
		{92.0, 47.0, 40.0, 29.0, 25.0},  // 60 %
		{105.0, 55.0, 45.0, 40.0, 29.0}, // 70 %
		{118.0, 63.0, 50.0, 43.0, 31.5}, // 80 %
		{130.0, 72.0, 58.0, 46.5, 33.5}, // 90 %
		{142.0, 80.0, 64.0, 49.0, 36.0}, // 100 %
	}
	s, err := NewSurface(currents, dods, minutes)
	if err != nil {
		panic(err) // static data; unreachable unless the table is edited badly
	}
	return s
}

// locate returns the bracketing index i and interpolation weight w for v on
// axis (axis[i] ≤ v ≤ axis[i+1]); values outside the axis clamp to the ends.
func locate(axis []float64, v float64) (int, float64) {
	if v <= axis[0] {
		return 0, 0
	}
	n := len(axis)
	if v >= axis[n-1] {
		return n - 2, 1
	}
	i := sort.SearchFloat64s(axis, v)
	if axis[i] == v {
		if i == n-1 {
			return n - 2, 1
		}
		return i, 0
	}
	i--
	return i, (v - axis[i]) / (axis[i+1] - axis[i])
}

// ChargeTime returns the bilinearly interpolated charge time at CC setpoint
// i and depth of discharge dod. Inputs clamp to the table's hull.
func (s *Surface) ChargeTime(i units.Current, dod units.Fraction) time.Duration {
	ci, cw := locate(s.currents, float64(i))
	di, dw := locate(s.dods, float64(dod.Clamp01()))
	m00 := s.minutes[di][ci]
	m01 := s.minutes[di][ci+1]
	m10 := s.minutes[di+1][ci]
	m11 := s.minutes[di+1][ci+1]
	lo := m00 + (m01-m00)*cw
	hi := m10 + (m11-m10)*cw
	min := lo + (hi-lo)*dw
	return time.Duration(min * float64(time.Minute))
}

// MinCurrent and MaxCurrent return the hardware current bounds of the
// surface (its axis extremes).
func (s *Surface) MinCurrent() units.Current { return units.Current(s.currents[0]) }

// MaxCurrent returns the maximum tabulated charging current.
func (s *Surface) MaxCurrent() units.Current {
	return units.Current(s.currents[len(s.currents)-1])
}

// RequiredCurrent returns the smallest charging current on the resolution
// grid (e.g. 1 A for the production charger's integer override steps) whose
// interpolated charge time at dod meets deadline, and whether any current in
// range does. When infeasible it returns the maximum current: the
// best-effort setting the controller still applies (paper §IV-C).
func (s *Surface) RequiredCurrent(dod units.Fraction, deadline time.Duration, resolution units.Current) (units.Current, bool) {
	if resolution <= 0 {
		resolution = 1
	}
	min, max := s.MinCurrent(), s.MaxCurrent()
	if s.ChargeTime(max, dod) > deadline {
		return max, false
	}
	// Charge time is monotone nonincreasing in current, so scan the
	// resolution grid from the bottom.
	for i := min; i < max; i += resolution {
		if s.ChargeTime(i, dod) <= deadline {
			return i, true
		}
	}
	return max, true
}

// SLACurve is a memoized inverse of a Surface at one (deadline, resolution)
// pair: the per-priority SLA-current curve of Fig 9b, precomputed so
// planners stop re-scanning the surface on every plan. For each current on
// the resolution grid it stores the largest depth of discharge that current
// can still charge within the deadline; RequiredCurrent then reduces to a
// handful of float comparisons.
//
// The boundaries are found by bisecting the float64 bit-space of the DOD
// axis, so every query returns bit-for-bit the same (current, feasible)
// pair as Surface.RequiredCurrent — the curve is a cache, never an
// approximation. This relies on ChargeTime being monotone nondecreasing in
// DOD at fixed current, which NewSurface validates.
type SLACurve struct {
	surface    *Surface
	deadline   time.Duration
	resolution units.Current
	grid       []units.Current // RequiredCurrent's scan grid: min, min+res, … < max
	maxDOD     []float64       // maxDOD[k]: largest clamped DOD meeting deadline at grid[k] (-1: none)
	maxDODTop  float64         // same boundary for MaxCurrent()
}

// NewSLACurve precomputes the inverse of s at the given deadline on the
// given resolution grid (non-positive resolution defaults to 1 A, matching
// RequiredCurrent).
func NewSLACurve(s *Surface, deadline time.Duration, resolution units.Current) *SLACurve {
	if resolution <= 0 {
		resolution = 1
	}
	c := &SLACurve{surface: s, deadline: deadline, resolution: resolution}
	min, max := s.MinCurrent(), s.MaxCurrent()
	// The grid is generated by the same accumulation loop RequiredCurrent
	// scans, so the tabulated currents are the exact float64 values it
	// would return.
	for i := min; i < max; i += resolution {
		c.grid = append(c.grid, i)
		c.maxDOD = append(c.maxDOD, s.maxDODWithin(i, deadline))
	}
	c.maxDODTop = s.maxDODWithin(max, deadline)
	return c
}

// maxDODWithin returns the largest clamped depth of discharge whose charge
// time at current i meets the deadline, or -1 when even DOD 0 does not. The
// boundary is exact to the last float64 bit: queries against it decide
// "ChargeTime(i, d) ≤ deadline" for every d without calling ChargeTime.
func (s *Surface) maxDODWithin(i units.Current, deadline time.Duration) float64 {
	meets := func(d float64) bool {
		return s.ChargeTime(i, units.Fraction(d)) <= deadline
	}
	if !meets(0) {
		return -1
	}
	if meets(1) {
		return 1
	}
	lo, hi := 0.0, 1.0 // meets(lo), !meets(hi)
	for {
		mid := math.Float64frombits((math.Float64bits(lo) + math.Float64bits(hi)) / 2)
		if mid == lo || mid == hi {
			return lo
		}
		if meets(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
}

// Deadline returns the charging-time SLA this curve was built for.
func (c *SLACurve) Deadline() time.Duration { return c.deadline }

// Resolution returns the current grid the curve was built on.
func (c *SLACurve) Resolution() units.Current { return c.resolution }

// Surface returns the surface the curve inverts.
func (c *SLACurve) Surface() *Surface { return c.surface }

// RequiredCurrent is Surface.RequiredCurrent(dod, c.Deadline(),
// c.Resolution()) answered from the precomputed boundaries.
func (c *SLACurve) RequiredCurrent(dod units.Fraction) (units.Current, bool) {
	d := float64(dod.Clamp01())
	if d > c.maxDODTop {
		return c.surface.MaxCurrent(), false
	}
	for k, b := range c.maxDOD {
		if d <= b {
			return c.grid[k], true
		}
	}
	return c.surface.MaxCurrent(), true
}

// Meets reports whether charging at current i from dod finishes within the
// curve's deadline. ok is false when i is not a current the curve has a
// boundary for (off the resolution grid); the caller then falls back to
// Surface.ChargeTime.
func (c *SLACurve) Meets(i units.Current, dod units.Fraction) (meets, ok bool) {
	d := float64(dod.Clamp01())
	if i == c.surface.MaxCurrent() {
		return d <= c.maxDODTop, true
	}
	for k, g := range c.grid {
		if g == i {
			return d <= c.maxDOD[k], true
		}
	}
	return false, false
}

// RackPack is the rack-level battery model the coordinated-charging
// simulator uses: the paper's own abstraction (§V-B1) of a constant-power CC
// phase proportional to the charging current, an exponentially decaying CV
// tail, and total charge times taken from the Fig 5 surface.
//
// State is the remaining charge (ampere-minutes) still to deliver. The
// instantaneous current is min(setpoint, natural CV-tail current), where the
// tail current at remaining charge q is Icut + rate·q — the exact
// charge-domain form of the paper's exponential tail. This representation
// makes the initial Remaining() agree exactly with the surface's charge time
// and makes mid-charge setpoint overrides conserve charge, which is the
// physically faithful semantics for the manual-override feature.
//
// The pack additionally carries its energy deficit across the charge ↔
// discharge lifecycle: Discharge drains it while the rack rides through an
// input-power loss (suspending any charge in progress), and the deficit left
// by interrupted or postponed charges stays inside the pack, so the depth of
// discharge the control plane reads after re-energization is the battery's
// true state rather than an open-loop estimate.
type RackPack struct {
	surface *Surface
	// wattsPerAmp is the rack-level CC recharge power per ampere of BBU
	// setpoint (6 BBUs plus conversion losses): the paper's 1.9 kW at 5 A.
	wattsPerAmp float64
	cvRate      float64 // CV exponential decay rate, 1/min (paper: 0.18)
	cutoff      float64 // CV termination current, amperes (paper: 0.4)

	setpoint units.Current
	qRemain  float64        // ampere-minutes left to deliver
	qInitial float64        // ampere-minutes at the start of this charge
	dod0     units.Fraction // depth of discharge this charge started from
	charging bool
	// deficit is the energy (joules) still owed to the battery while the pack
	// is idle: what discharges drained minus what charges delivered, in
	// [0, RackFullEnergy]. While charging it is derived from the undelivered
	// fraction of the charge instead.
	deficit float64
}

// Rack-level recharge constants from the paper (§III-A, §V-B1).
const (
	// RackWattsPerAmp is the rack recharge power per ampere of per-BBU
	// charging current: 1.9 kW at 5 A.
	RackWattsPerAmp = 380.0
	// RackCVRatePerMin is the CV-phase exponential decay rate (1.9·e^(−0.18t) kW).
	RackCVRatePerMin = 0.18
	// RackFullEnergy is the rack-level full-discharge energy reference used
	// to compute DOD from IT load and open-transition length: 90 s at the
	// 12.6 kW rack rating.
	RackFullEnergy = 12600.0 * 90 // joules
)

// DODFromOutage estimates a rack battery's depth of discharge from the IT
// load it carried and the duration of the input-power loss, exactly as the
// paper's leaf controller does ("the DOD of the battery is estimated from
// the length of the open transition and IT load of the rack", §IV-B). The
// result saturates at 1 (the batteries can hold the rack for 90 s at the
// rack rating).
func DODFromOutage(itLoad units.Power, dur time.Duration) units.Fraction {
	if itLoad <= 0 || dur <= 0 {
		return 0
	}
	return units.Fraction(float64(units.EnergyOver(itLoad, dur)) / RackFullEnergy).Clamp01()
}

// NewRackPack returns an idle (fully charged) rack pack driven by surface.
func NewRackPack(surface *Surface) *RackPack {
	return &RackPack{
		surface:     surface,
		wattsPerAmp: RackWattsPerAmp,
		cvRate:      RackCVRatePerMin,
		cutoff:      0.4,
	}
}

// tailBoundary returns the remaining charge (A·min) at which the natural CV
// tail current equals the setpoint: below it the charge is voltage-limited.
func (rp *RackPack) tailBoundary(i units.Current) float64 {
	qb := (float64(i) - rp.cutoff) / rp.cvRate
	if qb < 0 {
		return 0
	}
	return qb
}

// tailTime is the time (minutes) for the CV tail to drain q ampere-minutes:
// dq/dt = −(Icut + rate·q) ⇒ t = ln(1 + q·rate/Icut)/rate.
func (rp *RackPack) tailTime(q float64) float64 {
	return math.Log(1+q*rp.cvRate/rp.cutoff) / rp.cvRate
}

// StartCharge begins a charge for a battery at depth of discharge dod with
// CC setpoint i. The initial remaining charge is constructed so that
// Remaining() equals the surface's ChargeTime(i, dod) exactly. The caller's
// dod is authoritative: the pack's own deficit is reset to match, so control
// planes that plan from estimated DODs stay self-consistent. A zero DOD
// leaves the pack idle and fully charged.
func (rp *RackPack) StartCharge(i units.Current, dod units.Fraction) {
	dod = dod.Clamp01()
	if dod <= 0 {
		rp.finish()
		return
	}
	i = i.Clamp(rp.surface.MinCurrent(), rp.surface.MaxCurrent())
	rp.setpoint = i
	t := rp.surface.ChargeTime(i, dod).Minutes()
	qb := rp.tailBoundary(i)
	tb := rp.tailTime(qb)
	if t > tb {
		// CC portion at the setpoint plus the full tail.
		rp.qRemain = float64(i)*(t-tb) + qb
	} else {
		// Entirely inside the tail: invert the tail-time relation.
		rp.qRemain = rp.cutoff / rp.cvRate * (math.Exp(rp.cvRate*t) - 1)
	}
	rp.qInitial = rp.qRemain
	rp.dod0 = dod
	rp.charging = rp.qRemain > 0
	rp.deficit = float64(dod) * RackFullEnergy
}

// Suspend interrupts an in-progress charge, capturing the undelivered
// fraction as the pack's standing deficit: the interrupt half of the
// charge ↔ discharge transition semantics. A later StartCharge at DOD()
// resumes from exactly where the charge stopped. Suspending an idle pack is
// a no-op.
func (rp *RackPack) Suspend() {
	if !rp.charging {
		return
	}
	d := rp.deficitNow()
	rp.finish()
	rp.deficit = d
}

// Abort abandons an in-progress charge (e.g. the rack lost input power
// again); the pack goes idle with the undelivered deficit retained, exactly
// like Suspend.
func (rp *RackPack) Abort() { rp.Suspend() }

// deficitNow returns the live energy deficit in joules: derived from the
// undelivered charge fraction while charging, the stored value otherwise.
func (rp *RackPack) deficitNow() float64 {
	if rp.charging {
		return float64(rp.dod0) * rp.FractionRemaining() * RackFullEnergy
	}
	return rp.deficit
}

// SOC returns the pack's state of charge in [0, 1].
func (rp *RackPack) SOC() units.Fraction {
	return 1 - rp.DOD()
}

// DOD returns the pack's live depth of discharge: the fraction of
// RackFullEnergy still owed to the battery. This is the true value the rack
// reports to the control plane on re-energization, replacing the open-loop
// outage-length estimate.
func (rp *RackPack) DOD() units.Fraction {
	return units.Fraction(rp.deficitNow() / RackFullEnergy).Clamp01()
}

// Depleted reports whether the pack is fully discharged (no energy left to
// carry the rack's IT load).
func (rp *RackPack) Depleted() bool {
	return !rp.charging && rp.deficit >= RackFullEnergy
}

// Discharge drains the pack at power p for dt, supplying the rack's IT load
// during an input-power loss. Any charge in progress is suspended first
// (with its deficit retained), so a discharge arriving mid-CC or mid-CV is a
// deterministic interrupt. It returns the energy actually delivered, which
// falls short of p·dt only when the pack empties — the rack then drops its
// load.
func (rp *RackPack) Discharge(p units.Power, dt time.Duration) units.Energy {
	rp.Suspend()
	if p <= 0 || dt <= 0 {
		return 0
	}
	want := float64(units.EnergyOver(p, dt))
	have := RackFullEnergy - rp.deficit
	if have < 0 {
		have = 0
	}
	got := want
	if got > have {
		got = have
	}
	rp.deficit += got
	if rp.deficit > RackFullEnergy {
		rp.deficit = RackFullEnergy
	}
	return units.Energy(got)
}

// FractionRemaining returns the fraction of this charge's total charge still
// to deliver, in [0, 1]; zero when idle.
func (rp *RackPack) FractionRemaining() float64 {
	if !rp.charging || rp.qInitial <= 0 {
		return 0
	}
	return rp.qRemain / rp.qInitial
}

// SetCurrent overrides the CC setpoint. Near the start of a charge (more
// than 90 % of the charge still to deliver — the coordinated controller's
// overrides land within seconds of charging beginning) the measured Fig 5
// surface is authoritative: the charge restarts at the new current from the
// proportionally reduced depth of discharge, so the completion time matches
// the planner's table lookup exactly. Deeper into a charge (mid-flight
// throttling) the remaining charge is conserved instead, which avoids the
// table's fixed low-current completion floors penalising a nearly finished
// battery. It is a no-op when idle.
func (rp *RackPack) SetCurrent(i units.Current) {
	if !rp.charging {
		return
	}
	i = i.Clamp(rp.surface.MinCurrent(), rp.surface.MaxCurrent())
	if i == rp.setpoint {
		// Re-applying the active setpoint is a no-op, making overrides
		// exactly idempotent: a duplicated command (an at-least-once
		// transport retransmitting) cannot restart or perturb the charge.
		return
	}
	if frac := rp.FractionRemaining(); frac > 0.9 {
		rp.StartCharge(i, units.Fraction(float64(rp.dod0)*frac))
		return
	}
	rp.setpoint = i
}

// finish completes a charge: the pack goes idle and fully charged. Suspend
// restores the deficit afterwards for interrupted (rather than completed)
// charges.
func (rp *RackPack) finish() {
	rp.charging = false
	rp.qRemain = 0
	rp.qInitial = 0
	rp.setpoint = 0
	rp.deficit = 0
}

// Charging reports whether a charge is in progress.
func (rp *RackPack) Charging() bool { return rp.charging }

// Setpoint returns the active CC setpoint (zero when idle).
func (rp *RackPack) Setpoint() units.Current { return rp.setpoint }

// Current returns the instantaneous charging current per BBU:
// min(setpoint, natural tail current).
func (rp *RackPack) Current() units.Current {
	if !rp.charging {
		return 0
	}
	tail := rp.cutoff + rp.cvRate*rp.qRemain
	if tail < float64(rp.setpoint) {
		return units.Current(tail)
	}
	return rp.setpoint
}

// Power returns the instantaneous rack-input recharge power: the constant CC
// power I·WattsPerAmp until the CV tail begins, then the exponential decay
// down to the cutoff (§V-B1).
func (rp *RackPack) Power() units.Power {
	return units.Power(rp.wattsPerAmp * float64(rp.Current()))
}

// Remaining returns the time to completion at the present setpoint.
func (rp *RackPack) Remaining() time.Duration {
	if !rp.charging {
		return 0
	}
	qb := rp.tailBoundary(rp.setpoint)
	var min float64
	if rp.qRemain > qb {
		min = (rp.qRemain-qb)/float64(rp.setpoint) + rp.tailTime(qb)
	} else {
		min = rp.tailTime(rp.qRemain)
	}
	return time.Duration(min * float64(time.Minute))
}

// PowerLowerBound returns a power the pack is guaranteed to still draw at
// every instant within the next win of charging (assuming no setpoint change,
// suspension, or completion): a floor under Power() over the window. The
// bound assumes the fastest possible drain — the full-CV exponential decay
// from the present remaining charge — which dominates the CC phase because
// inside the CC region the natural tail current exceeds the setpoint. The
// event kernel subtracts this from the breaker limit to prove that storm
// admission and postponed restarts stay no-ops across a skipped span. Idle
// packs bound at zero; so do packs that could complete within the window.
func (rp *RackPack) PowerLowerBound(win time.Duration) units.Power {
	if !rp.charging || win < 0 {
		return 0
	}
	shift := rp.cutoff / rp.cvRate
	qLB := (rp.qRemain+shift)*math.Exp(-rp.cvRate*win.Minutes()) - shift
	if qLB <= 0 {
		return 0
	}
	i := rp.cutoff + rp.cvRate*qLB
	if i > float64(rp.setpoint) {
		i = float64(rp.setpoint)
	}
	return units.Power(rp.wattsPerAmp * i)
}

// Step advances the charge by dt, returning the rack-input energy absorbed
// during the step (WattsPerAmp times the charge delivered, the exact
// integral of Power over the step).
func (rp *RackPack) Step(dt time.Duration) units.Energy {
	if !rp.charging || dt <= 0 {
		return 0
	}
	remainMin := dt.Minutes()
	delivered := 0.0
	qb := rp.tailBoundary(rp.setpoint)
	// CC portion: constant current at the setpoint until the tail boundary.
	if rp.qRemain > qb {
		tCC := (rp.qRemain - qb) / float64(rp.setpoint)
		step := math.Min(remainMin, tCC)
		dq := float64(rp.setpoint) * step
		delivered += dq
		rp.qRemain -= dq
		remainMin -= step
	}
	// Tail portion: q(t) = (q0 + Icut/rate)·e^(−rate·t) − Icut/rate.
	if remainMin > 1e-12 && rp.qRemain > 0 {
		tDone := rp.tailTime(rp.qRemain)
		if remainMin >= tDone {
			delivered += rp.qRemain
			rp.qRemain = 0
		} else {
			shift := rp.cutoff / rp.cvRate
			q1 := (rp.qRemain+shift)*math.Exp(-rp.cvRate*remainMin) - shift
			delivered += rp.qRemain - q1
			rp.qRemain = q1
		}
	}
	if rp.qRemain <= 1e-12 {
		rp.finish()
	}
	// delivered is in ampere-minutes at the rack conversion ratio:
	// energy = WattsPerAmp [W/A] × delivered [A·min] × 60 [s/min].
	return units.Energy(rp.wattsPerAmp * delivered * 60)
}

// AdvanceTicks advances the charge by up to n ticks of dt each,
// bit-identically to calling Step(dt) n times, and returns how many ticks it
// executed. It never executes a tick on which the charge would complete:
// when tick t (0-based) would finish the charge it returns t with the pack
// still charging, so the caller can run that tick through the full rack step
// (which owns completion bookkeeping) at the tick's exact virtual time.
//
// Bit-exactness argument, tick by tick against Step:
//
//   - Pure-CC tick (qRemain > tailBoundary and the boundary is at least a
//     full tick away): Step picks step = min(remainMin, tCC) = remainMin and
//     computes qRemain -= setpoint·remainMin; the subtrahend is constant
//     across ticks, so hoisting it is the identical float operation. The
//     leftover remainMin−step is exactly 0.0, so Step's tail branch is dead.
//   - Crossing tick (the boundary falls inside the tick): delegated to the
//     real Step — at most one such tick per charge, so the delegation cannot
//     cost more than O(1) per charge. Completion inside the crossing tick is
//     detected first with a non-mutating replay of Step's arithmetic.
//   - Pure-CV tick (qRemain ≤ tailBoundary): Step computes
//     (qRemain+shift)·exp(−rate·remainMin) − shift with remainMin constant
//     across ticks, so the exp factor is hoisted; math.Exp is a pure
//     function of its bits, making the hoisted product identical.
func (rp *RackPack) AdvanceTicks(dt time.Duration, n int) int {
	if !rp.charging || dt <= 0 {
		return n
	}
	stepMin := dt.Minutes()
	spf := float64(rp.setpoint)
	qb := rp.tailBoundary(rp.setpoint)
	shift := rp.cutoff / rp.cvRate
	dqCC := spf * stepMin
	expCV := math.Exp(-rp.cvRate * stepMin)
	for t := 0; t < n; t++ {
		if rp.qRemain > qb {
			tCC := (rp.qRemain - qb) / spf
			if tCC >= stepMin {
				// Pure CC: the whole tick at the setpoint.
				q1 := rp.qRemain - dqCC
				if q1 <= 1e-12 {
					return t // Step would finish; let the caller run it
				}
				rp.qRemain = q1
				continue
			}
			// Crossing tick: peek completion, then delegate the mutation.
			dq := spf * tCC
			qcc := rp.qRemain - dq
			rem := stepMin - tCC
			completes := false
			if rem > 1e-12 && qcc > 0 {
				if rem >= rp.tailTime(qcc) {
					completes = true
				} else if (qcc+shift)*math.Exp(-rp.cvRate*rem)-shift <= 1e-12 {
					completes = true
				}
			} else if qcc <= 1e-12 {
				completes = true
			}
			if completes {
				return t
			}
			rp.Step(dt)
			continue
		}
		// Pure CV: exponential tail decay.
		if stepMin >= rp.tailTime(rp.qRemain) {
			return t
		}
		q1 := (rp.qRemain+shift)*expCV - shift
		if q1 <= 1e-12 {
			return t
		}
		rp.qRemain = q1
	}
	return n
}
