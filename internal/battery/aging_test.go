package battery

import (
	"math"
	"testing"
	"time"

	"coordcharge/internal/units"
)

func agedParams(fade float64) Params {
	p := DefaultParams()
	p.FadePerCycle = fade
	return p
}

func cycleOnce(b *BBU) {
	b.Discharge(3300*units.Watt, 90*time.Second)
	b.StartCharge(5)
	b.StepCharge(3 * time.Hour)
}

func TestAgingDisabledByDefault(t *testing.T) {
	b := New(DefaultParams())
	for i := 0; i < 20; i++ {
		cycleOnce(b)
	}
	if b.Health() != 1 {
		t.Errorf("health with aging disabled = %v, want 1", b.Health())
	}
	if math.Abs(b.EquivalentCycles()-20) > 1e-9 {
		t.Errorf("equivalent cycles = %v, want 20", b.EquivalentCycles())
	}
	// Full capacity still available.
	got := b.Discharge(3300*units.Watt, 90*time.Second)
	if math.Abs(got.KJ()-297) > 1e-6 {
		t.Errorf("discharge after 20 cycles = %v, want 297 kJ", got)
	}
}

func TestAgingValidation(t *testing.T) {
	p := agedParams(0.5) // absurd fade
	if err := p.Validate(); err == nil {
		t.Error("fade 0.5/cycle accepted")
	}
	p = agedParams(-0.001)
	if err := p.Validate(); err == nil {
		t.Error("negative fade accepted")
	}
	p = agedParams(0.001)
	p.MinHealth = 1.5
	if err := p.Validate(); err == nil {
		t.Error("min health >1 accepted")
	}
}

func TestAgingReducesUsableCapacity(t *testing.T) {
	b := New(agedParams(0.001)) // 0.1% per cycle
	for i := 0; i < 100; i++ {
		cycleOnce(b)
	}
	h := float64(b.Health())
	// ~100 equivalent cycles at 0.1% each → ~90% health (cycles accrue
	// slightly less than 1 per loop as capacity shrinks).
	if h < 0.88 || h > 0.93 {
		t.Errorf("health after 100 cycles = %v, want ~0.90", h)
	}
	got := b.Discharge(3300*units.Watt, 90*time.Second)
	want := 297e3 * h
	if math.Abs(float64(got)-want) > 1 {
		t.Errorf("aged discharge = %v, want %.0f J", got, want)
	}
}

func TestAgingHealthFloor(t *testing.T) {
	p := agedParams(0.01)
	p.MinHealth = 0.8
	b := New(p)
	for i := 0; i < 100; i++ {
		cycleOnce(b)
	}
	if got := b.Health(); got != 0.8 {
		t.Errorf("health = %v, want floored at 0.8", got)
	}
}

func TestAgingDefaultFloor(t *testing.T) {
	b := New(agedParams(0.01))
	for i := 0; i < 200; i++ {
		cycleOnce(b)
	}
	if got := b.Health(); got != 0.6 {
		t.Errorf("health = %v, want default 0.6 floor", got)
	}
}

func TestAgingShortensRuntime(t *testing.T) {
	// An aged battery holds the same load for less time: the AOR-relevant
	// consequence of fade.
	fresh := New(DefaultParams())
	aged := New(agedParams(0.002))
	for i := 0; i < 100; i++ {
		cycleOnce(aged)
	}
	freshOut := fresh.Discharge(3300*units.Watt, 90*time.Second)
	aged.StartCharge(5)
	aged.StepCharge(3 * time.Hour)
	agedOut := aged.Discharge(3300*units.Watt, 90*time.Second)
	if agedOut >= freshOut {
		t.Errorf("aged battery delivered %v, fresh %v", agedOut, freshOut)
	}
}

func TestPartialCyclesAccrueProportionally(t *testing.T) {
	b := New(agedParams(0.001))
	// Four quarter discharges ≈ one equivalent cycle.
	for i := 0; i < 4; i++ {
		b.Discharge(3300*units.Watt, 22500*time.Millisecond)
		b.StartCharge(5)
		b.StepCharge(2 * time.Hour)
	}
	if c := b.EquivalentCycles(); math.Abs(c-1) > 0.02 {
		t.Errorf("equivalent cycles after 4 quarter-discharges = %v, want ~1", c)
	}
}
