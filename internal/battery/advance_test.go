package battery

import (
	"math"
	"testing"
	"time"

	"coordcharge/internal/rng"
	"coordcharge/internal/units"
)

// The analytic fast paths exist to let an event-driven kernel skip dense
// ticks without perturbing a single bit of simulation state, so these tests
// demand float64 bit-equality (==, not tolerance) against the stepped
// reference at every tick boundary.

func TestAdvanceTicksBitExact(t *testing.T) {
	s := Fig5Surface()
	r := rng.New(42)
	for _, tc := range []struct {
		i    units.Current
		dod  units.Fraction
		step time.Duration
	}{
		{5, 1, 3 * time.Second},
		{5, 0.7, 3 * time.Second},
		{3, 0.5, 3 * time.Second},
		{2, 0.33, 5 * time.Second},
		{1, 0.05, 3 * time.Second},
		{1, 1, 10 * time.Second},
		{4, 0.9, time.Second},
	} {
		// Reference: the dense per-tick trajectory.
		ref := NewRackPack(s)
		ref.StartCharge(tc.i, tc.dod)
		var traj []float64 // qRemain after tick k
		var charging []bool
		for n := 0; ref.Charging() && n < 1<<22; n++ {
			ref.Step(tc.step)
			traj = append(traj, ref.qRemain)
			charging = append(charging, ref.charging)
		}
		if len(traj) == 0 || charging[len(traj)-1] {
			t.Fatalf("%v A / %v DOD: reference never completed (%d ticks)", tc.i, tc.dod, len(traj))
		}

		// Fast path: the same trajectory in random chunks.
		fast := NewRackPack(s)
		fast.StartCharge(tc.i, tc.dod)
		tick := 0
		for fast.Charging() {
			chunk := 1 + r.Intn(997)
			adv := fast.AdvanceTicks(tc.step, chunk)
			tick += adv
			if tick > len(traj) {
				t.Fatalf("%v A / %v DOD: advanced past the reference completion (%d > %d)", tc.i, tc.dod, tick, len(traj))
			}
			if fast.qRemain != traj[tick-1] && tick > 0 && adv > 0 {
				t.Fatalf("%v A / %v DOD: qRemain %x != reference %x after tick %d",
					tc.i, tc.dod, math.Float64bits(fast.qRemain), math.Float64bits(traj[tick-1]), tick-1)
			}
			if adv < chunk {
				// The withheld tick must be the completing one: executing it
				// through the real Step must finish the charge.
				if !fast.Charging() {
					t.Fatalf("%v A / %v DOD: AdvanceTicks stopped early with the pack idle", tc.i, tc.dod)
				}
				fast.Step(tc.step)
				tick++
				if fast.Charging() {
					t.Fatalf("%v A / %v DOD: withheld tick %d did not complete the charge", tc.i, tc.dod, tick-1)
				}
			}
		}
		if tick != len(traj) {
			t.Errorf("%v A / %v DOD: fast path completed after %d ticks, reference after %d", tc.i, tc.dod, tick, len(traj))
		}
	}
}

func TestAdvanceTicksIdleNoOp(t *testing.T) {
	rp := NewRackPack(Fig5Surface())
	if got := rp.AdvanceTicks(3*time.Second, 100); got != 100 {
		t.Errorf("idle AdvanceTicks = %d, want 100 (no-op consumes every tick)", got)
	}
	rp.StartCharge(5, 0.5)
	if got := rp.AdvanceTicks(0, 100); got != 100 {
		t.Errorf("zero-dt AdvanceTicks = %d, want 100", got)
	}
}

// TestPowerLowerBoundSound checks the bound's one contract: at every tick
// inside the window the pack's actual power stays at or above the bound
// computed at the window's start, across CC, crossing, and CV regimes.
func TestPowerLowerBoundSound(t *testing.T) {
	s := Fig5Surface()
	const step = 3 * time.Second
	for _, tc := range []struct {
		i   units.Current
		dod units.Fraction
		win time.Duration
	}{
		{5, 0.7, time.Minute},
		{5, 0.1, time.Minute},
		{2, 0.33, 30 * time.Second},
		{1, 0.9, time.Minute},
		{3, 0.5, 5 * time.Minute},
	} {
		rp := NewRackPack(s)
		rp.StartCharge(tc.i, tc.dod)
		for rp.Charging() {
			bound := rp.PowerLowerBound(tc.win)
			probe := *rp // value copy: packs have no reference fields beyond the shared surface
			for off := time.Duration(0); off < tc.win && probe.Charging(); off += step {
				if p := probe.Power(); p < bound {
					t.Fatalf("%v A / %v DOD: power %v at +%v below bound %v", tc.i, tc.dod, p, off, bound)
				}
				probe.Step(step)
			}
			rp.Step(step)
		}
		if rp.PowerLowerBound(time.Minute) != 0 {
			t.Fatalf("%v A / %v DOD: idle pack bound non-zero", tc.i, tc.dod)
		}
	}
}

func TestBBUAdvanceToBitExact(t *testing.T) {
	p := DefaultParams()
	for _, tc := range []struct {
		i       units.Current
		soc     float64
		quantum time.Duration
		d       time.Duration
	}{
		{5, 0.0, 3 * time.Second, 30 * time.Minute},
		{5, 0.3, 3 * time.Second, 2 * time.Hour},
		{2, 0.5, 5 * time.Second, 3 * time.Hour},
		{1, 0.9, 3 * time.Second, 4 * time.Hour},
		{3, 0.2, 3 * time.Second, 10 * time.Second}, // not a whole number of quanta
		{4, 0.95, 7 * time.Second, 90 * time.Minute},
	} {
		ref := New(p)
		ref.soc = tc.soc
		ref.state = Discharging
		ref.StartCharge(tc.i)

		fast := New(p)
		fast.soc = tc.soc
		fast.state = Discharging
		fast.StartCharge(tc.i)

		var refEnergy units.Energy
		n := int(tc.d / tc.quantum)
		for k := 0; k < n; k++ {
			refEnergy += ref.StepCharge(tc.quantum)
		}
		if rem := tc.d - time.Duration(n)*tc.quantum; rem > 0 {
			refEnergy += ref.StepCharge(rem)
		}

		fastEnergy := fast.AdvanceTo(tc.d, tc.quantum)

		if fast.soc != ref.soc {
			t.Errorf("%v A from soc %.2f over %v: soc %x != reference %x",
				tc.i, tc.soc, tc.d, math.Float64bits(fast.soc), math.Float64bits(ref.soc))
		}
		if fast.state != ref.state {
			t.Errorf("%v A from soc %.2f over %v: state %v != reference %v", tc.i, tc.soc, tc.d, fast.state, ref.state)
		}
		if float64(fastEnergy) != float64(refEnergy) {
			t.Errorf("%v A from soc %.2f over %v: energy %x != reference %x",
				tc.i, tc.soc, tc.d, math.Float64bits(float64(fastEnergy)), math.Float64bits(float64(refEnergy)))
		}
	}
}

func TestBBUAdvanceToIdleAndDegenerate(t *testing.T) {
	p := DefaultParams()
	b := New(p)
	if got := b.AdvanceTo(time.Minute, 3*time.Second); got != 0 {
		t.Errorf("idle AdvanceTo absorbed %v, want 0", got)
	}
	b.soc = 0.5
	b.state = Discharging
	b.StartCharge(3)
	// quantum >= d collapses to a single StepCharge.
	ref := New(p)
	ref.soc = 0.5
	ref.state = Discharging
	ref.StartCharge(3)
	want := ref.StepCharge(2 * time.Second)
	got := b.AdvanceTo(2*time.Second, 3*time.Second)
	if float64(got) != float64(want) || b.soc != ref.soc {
		t.Errorf("quantum>d AdvanceTo = %v (soc %v), want %v (soc %v)", got, b.soc, want, ref.soc)
	}
}
