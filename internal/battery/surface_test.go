package battery

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"coordcharge/internal/units"
)

func TestFig5SurfaceValid(t *testing.T) {
	// Fig5Surface panics on an invalid table; constructing it is the test.
	s := Fig5Surface()
	if s.MinCurrent() != 1 || s.MaxCurrent() != 5 {
		t.Errorf("current range = [%v, %v], want [1, 5] A", s.MinCurrent(), s.MaxCurrent())
	}
}

func TestNewSurfaceRejectsBadGrids(t *testing.T) {
	cur := []float64{1, 2}
	dod := []float64{0, 1}
	cases := []struct {
		name     string
		currents []float64
		dods     []float64
		minutes  [][]float64
	}{
		{"too few currents", []float64{1}, dod, [][]float64{{10}, {20}}},
		{"unsorted currents", []float64{2, 1}, dod, [][]float64{{10, 20}, {20, 30}}},
		{"row count mismatch", cur, dod, [][]float64{{10, 5}}},
		{"col count mismatch", cur, dod, [][]float64{{10, 5, 1}, {20, 10, 2}}},
		{"negative time", cur, dod, [][]float64{{10, -5}, {20, 10}}},
		{"not monotone in current", cur, dod, [][]float64{{10, 12}, {20, 25}}},
		{"not monotone in DOD", cur, dod, [][]float64{{10, 5}, {8, 4}}},
	}
	for _, c := range cases {
		if _, err := NewSurface(c.currents, c.dods, c.minutes); err == nil {
			t.Errorf("%s: NewSurface accepted invalid grid", c.name)
		}
	}
}

// Paper anchors for the Fig 5 surface.
func TestFig5Anchors(t *testing.T) {
	s := Fig5Surface()
	cases := []struct {
		i        units.Current
		dod      units.Fraction
		min, max float64 // minutes
		why      string
	}{
		{5, 1.0, 34, 38, "Fig 3: full charge at 5A ~36 min"},
		{5, 0.1, 13, 17, "Fig 5: flat ~15 min region at low DOD"},
		{4, 0.7, 36, 44, "§III-B: 4A at 70% DOD ~40 min"},
		{2, 0.5, 36, 44, "§III-B: 2A at 50% DOD ~40 min"},
		{1, 1.0, 120, 160, "Fig 5: 1A considerably high"},
		{2, 0.05, 24, 30, "Fig 9b/10: 2A meets 30-min P1 SLA at low DOD"},
		{1, 0.05, 45, 60, "Fig 9b/10: 1A meets 60-min P2 SLA but not 30-min P1"},
	}
	for _, c := range cases {
		got := s.ChargeTime(c.i, c.dod).Minutes()
		if got < c.min || got > c.max {
			t.Errorf("T(%v, %v) = %.1f min, want [%v, %v] (%s)", c.i, c.dod, got, c.min, c.max, c.why)
		}
	}
}

// Paper §III-B: the variable charger (Eq 1) keeps charging time within the
// 45-minute bound at every depth of discharge.
func TestFig5VariableChargerAlwaysWithin45Min(t *testing.T) {
	s := Fig5Surface()
	for dod := 0.0; dod <= 1.0001; dod += 0.01 {
		ic := 2.0
		if dod >= 0.5 {
			ic = 2 + (dod-0.5)*6
		}
		ct := s.ChargeTime(units.Current(ic), units.Fraction(dod))
		if ct > 45*time.Minute+time.Second {
			t.Errorf("Eq1 current %.2fA at DOD %.0f%% charges in %v, want ≤45 min", ic, dod*100, ct)
		}
	}
}

func TestSurfaceInterpolationExactAtGridPoints(t *testing.T) {
	s := Fig5Surface()
	if got := s.ChargeTime(5, 1).Minutes(); got != 36 {
		t.Errorf("grid point T(5,1) = %v, want 36", got)
	}
	if got := s.ChargeTime(1, 0).Minutes(); got != 50 {
		t.Errorf("grid point T(1,0) = %v, want 50", got)
	}
	if got := s.ChargeTime(3, 0.5).Minutes(); got != 32 {
		t.Errorf("grid point T(3,0.5) = %v, want 32", got)
	}
}

func TestSurfaceInterpolationBetweenPoints(t *testing.T) {
	s := Fig5Surface()
	// Midway between 2A and 3A at DOD 0.5: (40+32)/2 = 36 min.
	if got := s.ChargeTime(2.5, 0.5).Minutes(); math.Abs(got-36) > 1e-9 {
		t.Errorf("T(2.5, 0.5) = %v, want 36", got)
	}
	// Midway between DOD rows 0.5/0.6 at 2A: (40+47)/2 = 43.5 min.
	if got := s.ChargeTime(2, 0.55).Minutes(); math.Abs(got-43.5) > 1e-9 {
		t.Errorf("T(2, 0.55) = %v, want 43.5", got)
	}
}

func TestSurfaceClampsOutOfRange(t *testing.T) {
	s := Fig5Surface()
	if got, want := s.ChargeTime(9, 1), s.ChargeTime(5, 1); got != want {
		t.Errorf("over-range current not clamped: %v vs %v", got, want)
	}
	if got, want := s.ChargeTime(0.5, 0.3), s.ChargeTime(1, 0.3); got != want {
		t.Errorf("under-range current not clamped: %v vs %v", got, want)
	}
	if got, want := s.ChargeTime(3, 1.7), s.ChargeTime(3, 1); got != want {
		t.Errorf("over-range DOD not clamped: %v vs %v", got, want)
	}
}

func TestSurfaceMonotoneProperty(t *testing.T) {
	s := Fig5Surface()
	prop := func(iRaw, dRaw uint8) bool {
		i := 1 + units.Current(iRaw%41)*0.1 // 1.0..5.0
		d := units.Fraction(dRaw%101) / 100
		t0 := s.ChargeTime(i, d)
		if i+0.1 <= 5 && s.ChargeTime(i+0.1, d) > t0 {
			return false
		}
		if d+0.01 <= 1 && s.ChargeTime(i, d+0.01) < t0 {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Fig 9b at integer-amp resolution: P1 (30 min) needs 2 A at low DOD, P2
// (60 min) and P3 (90 min) need only 1 A.
func TestFig9bSLACurrentsAtLowDOD(t *testing.T) {
	s := Fig5Surface()
	if i, ok := s.RequiredCurrent(0.05, 30*time.Minute, 1); !ok || i != 2 {
		t.Errorf("P1 SLA current at 5%% DOD = %v/%v, want 2 A", i, ok)
	}
	if i, ok := s.RequiredCurrent(0.05, 60*time.Minute, 1); !ok || i != 1 {
		t.Errorf("P2 SLA current at 5%% DOD = %v/%v, want 1 A", i, ok)
	}
	if i, ok := s.RequiredCurrent(0.05, 90*time.Minute, 1); !ok || i != 1 {
		t.Errorf("P3 SLA current at 5%% DOD = %v/%v, want 1 A", i, ok)
	}
}

func TestRequiredCurrentInfeasible(t *testing.T) {
	s := Fig5Surface()
	// 30-minute SLA at full discharge is beyond 5 A hardware (36 min).
	i, ok := s.RequiredCurrent(1, 30*time.Minute, 1)
	if ok {
		t.Error("30-min SLA at 100% DOD reported feasible")
	}
	if i != 5 {
		t.Errorf("infeasible best-effort current = %v, want 5 A", i)
	}
}

func TestRequiredCurrentMeetsDeadlineSurfaceProperty(t *testing.T) {
	s := Fig5Surface()
	prop := func(dodRaw, dlRaw uint8) bool {
		dod := units.Fraction(dodRaw%101) / 100
		deadline := time.Duration(15+int(dlRaw)%120) * time.Minute
		i, ok := s.RequiredCurrent(dod, deadline, 1)
		if ok {
			if s.ChargeTime(i, dod) > deadline {
				return false
			}
			// Minimality on the 1 A grid.
			if i > 1 && s.ChargeTime(i-1, dod) <= deadline {
				return false
			}
			return true
		}
		return s.ChargeTime(5, dod) > deadline && i == 5
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDODFromOutage(t *testing.T) {
	// 12.6 kW for 90 s is a full rack discharge.
	if got := DODFromOutage(12600*units.Watt, 90*time.Second); got != 1 {
		t.Errorf("full-load 90s DOD = %v, want 1", got)
	}
	// Half load for 45 s is a quarter discharge.
	if got := DODFromOutage(6300*units.Watt, 45*time.Second); math.Abs(float64(got)-0.25) > 1e-9 {
		t.Errorf("half-load 45s DOD = %v, want 0.25", got)
	}
	if got := DODFromOutage(0, time.Minute); got != 0 {
		t.Errorf("zero-load DOD = %v, want 0", got)
	}
	// Saturates at 1.
	if got := DODFromOutage(12600*units.Watt, time.Hour); got != 1 {
		t.Errorf("long-outage DOD = %v, want 1", got)
	}
}

func TestRackPackInitialRemainingMatchesSurface(t *testing.T) {
	s := Fig5Surface()
	for _, tc := range []struct {
		i   units.Current
		dod units.Fraction
	}{{5, 1}, {2, 0.5}, {1, 0.05}, {4, 0.7}, {3, 0.33}, {1, 1}} {
		rp := NewRackPack(s)
		rp.StartCharge(tc.i, tc.dod)
		want := s.ChargeTime(tc.i, tc.dod)
		got := rp.Remaining()
		if math.Abs((got - want).Seconds()) > 1 {
			t.Errorf("StartCharge(%v, %v): Remaining = %v, want %v", tc.i, tc.dod, got, want)
		}
	}
}

func TestRackPackCCPower(t *testing.T) {
	s := Fig5Surface()
	rp := NewRackPack(s)
	rp.StartCharge(5, 1)
	// Paper: rack recharge at 5 A draws ~1.9 kW in CC.
	if p := rp.Power(); math.Abs(float64(p)-1900) > 1 {
		t.Errorf("CC power at 5A = %v, want 1.9 kW", p)
	}
	rp2 := NewRackPack(s)
	rp2.StartCharge(2, 0.05)
	// Paper Fig 10: ~700 W at 2 A; 380 W/A gives 760 W.
	if p := rp2.Power(); math.Abs(float64(p)-760) > 1 {
		t.Errorf("CC power at 2A = %v, want 760 W", p)
	}
	rp3 := NewRackPack(s)
	rp3.StartCharge(1, 0.05)
	// Paper Fig 10: ~350 W at 1 A; 380 W/A gives 380 W.
	if p := rp3.Power(); math.Abs(float64(p)-380) > 1 {
		t.Errorf("CC power at 1A = %v, want 380 W", p)
	}
}

func TestRackPackStepCompletesOnSchedule(t *testing.T) {
	s := Fig5Surface()
	rp := NewRackPack(s)
	rp.StartCharge(5, 1)
	want := s.ChargeTime(5, 1)
	var elapsed time.Duration
	const step = 3 * time.Second
	for rp.Charging() && elapsed < 5*time.Hour {
		rp.Step(step)
		elapsed += step
	}
	if math.Abs((elapsed - want).Seconds()) > 5 {
		t.Errorf("stepped completion %v, want %v", elapsed, want)
	}
}

func TestRackPackPowerDecaysInTail(t *testing.T) {
	s := Fig5Surface()
	rp := NewRackPack(s)
	rp.StartCharge(5, 1)
	// Run until just inside the tail.
	rp.Step(rp.Remaining() - 5*time.Minute)
	p1 := rp.Power()
	rp.Step(2 * time.Minute)
	p2 := rp.Power()
	if p1 >= 1900*units.Watt {
		t.Errorf("tail power %v did not drop below CC power", p1)
	}
	if p2 >= p1 {
		t.Errorf("tail power did not decay: %v then %v", p1, p2)
	}
}

func TestRackPackOverrideAtStartMatchesSurface(t *testing.T) {
	// An override before meaningful progress re-derives the completion time
	// from the surface: the controller's table lookup and the executed
	// charge agree exactly.
	s := Fig5Surface()
	rp := NewRackPack(s)
	rp.StartCharge(5, 1)
	rp.SetCurrent(1)
	want := s.ChargeTime(1, 1)
	if got := rp.Remaining(); math.Abs((got - want).Seconds()) > 1 {
		t.Errorf("remaining after start-override = %v, want surface %v", got, want)
	}
	// Remaining time grows when slowing down.
	slow := rp.Remaining()
	rp.SetCurrent(5)
	fast := rp.Remaining()
	if slow <= fast {
		t.Errorf("remaining at 1A (%v) not longer than at 5A (%v)", slow, fast)
	}
}

func TestRackPackOverrideMidChargeConservesCharge(t *testing.T) {
	s := Fig5Surface()
	rp := NewRackPack(s)
	rp.StartCharge(5, 1)
	// Burn well past the 90 % threshold.
	rp.Step(15 * time.Minute)
	if rp.FractionRemaining() > 0.9 {
		t.Fatal("test setup: still in the near-start regime")
	}
	q0 := rp.qRemain
	rp.SetCurrent(1)
	if rp.qRemain != q0 {
		t.Errorf("mid-charge override changed remaining charge: %v -> %v", q0, rp.qRemain)
	}
	// A nearly finished pack overridden to 1 A is NOT penalised with the
	// table's ~50-minute 1 A floor.
	rp2 := NewRackPack(s)
	rp2.StartCharge(5, 1)
	rp2.Step(30 * time.Minute) // deep into the charge
	rp2.SetCurrent(1)
	if got := rp2.Remaining(); got > 30*time.Minute {
		t.Errorf("nearly-done pack at 1A has %v remaining, want well under the 50-min floor", got)
	}
}

func TestRackPackOverrideToMinimumSlowsCharge(t *testing.T) {
	s := Fig5Surface()
	rp := NewRackPack(s)
	rp.StartCharge(5, 0.5)
	before := rp.Remaining()
	rp.SetCurrent(1)
	after := rp.Remaining()
	if after <= before {
		t.Errorf("override to 1A did not extend charge: %v -> %v", before, after)
	}
	if p := rp.Power(); math.Abs(float64(p)-380) > 1 {
		t.Errorf("power after 1A override = %v, want 380 W", p)
	}
}

func TestRackPackEnergyMatchesPowerIntegral(t *testing.T) {
	s := Fig5Surface()
	rp := NewRackPack(s)
	rp.StartCharge(3, 0.6)
	var stepped units.Energy
	var riemann float64
	const dt = time.Second
	for rp.Charging() {
		riemann += float64(rp.Power()) * dt.Seconds()
		stepped += rp.Step(dt)
	}
	rel := math.Abs(riemann-float64(stepped)) / float64(stepped)
	if rel > 0.01 {
		t.Errorf("energy integral mismatch: riemann %.0f J vs stepped %.0f J (%.2f%%)", riemann, float64(stepped), rel*100)
	}
}

func TestRackPackZeroDODIdle(t *testing.T) {
	rp := NewRackPack(Fig5Surface())
	rp.StartCharge(5, 0)
	if rp.Charging() || rp.Power() != 0 || rp.Remaining() != 0 {
		t.Errorf("zero-DOD pack not idle: charging=%v power=%v", rp.Charging(), rp.Power())
	}
}

func TestRackPackSetCurrentWhenIdleIsNoop(t *testing.T) {
	rp := NewRackPack(Fig5Surface())
	rp.SetCurrent(4)
	if rp.Setpoint() != 0 || rp.Charging() {
		t.Error("SetCurrent on idle pack changed state")
	}
}

func TestRackPackLargeStepOvershoot(t *testing.T) {
	rp := NewRackPack(Fig5Surface())
	rp.StartCharge(2, 0.3)
	e := rp.Step(10 * time.Hour)
	if rp.Charging() {
		t.Error("pack still charging after huge step")
	}
	if e <= 0 {
		t.Error("no energy delivered")
	}
	if e2 := rp.Step(time.Minute); e2 != 0 {
		t.Errorf("idle pack delivered %v", e2)
	}
}

func TestRackPackChargeConservationProperty(t *testing.T) {
	// However the setpoint is toggled during a charge, the total delivered
	// charge equals the initial remaining charge.
	s := Fig5Surface()
	prop := func(dodRaw uint8, toggles []uint8) bool {
		dod := units.Fraction(5+dodRaw%96) / 100
		rp := NewRackPack(s)
		rp.StartCharge(3, dod)
		// Burn past the near-start regime (overrides there re-derive from
		// the surface and legitimately change the remaining charge); beyond
		// it every override conserves charge.
		var delivered units.Energy
		for rp.Charging() && rp.FractionRemaining() > 0.85 {
			delivered += rp.Step(5 * time.Second)
		}
		delivered = 0
		q0 := rp.qRemain
		ti := 0
		for it := 0; rp.Charging() && it < 100000; it++ {
			if len(toggles) > 0 && it%50 == 0 {
				rp.SetCurrent(units.Current(1 + toggles[ti%len(toggles)]%5))
				ti++
			}
			delivered += rp.Step(5 * time.Second)
		}
		if q0 <= 0 {
			return true
		}
		wantJ := q0 * RackWattsPerAmp * 60
		return math.Abs(float64(delivered)-wantJ)/wantJ < 1e-6
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
