package battery

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"coordcharge/internal/units"
)

func fullDischarge(b *BBU) {
	b.Discharge(3300*units.Watt, 90*time.Second)
}

func TestDefaultParamsValid(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	base := DefaultParams()
	mutations := []func(*Params){
		func(p *Params) { p.Capacity = 0 },
		func(p *Params) { p.OCVSpan = -1 },
		func(p *Params) { p.InternalR = 0 },
		func(p *Params) { p.CutoffI = 0 },
		func(p *Params) { p.FullEnergy = 0 },
		func(p *Params) { p.MaxDischarge = 0 },
		func(p *Params) { p.MinChargeI = 0.1 }, // below cutoff
		func(p *Params) { p.MaxChargeI = 0.5 }, // below min
		func(p *Params) { p.OCVEmpty = 40 },    // breaks OCV(1)=Vcv−Imin·R
	}
	for i, mut := range mutations {
		p := base
		mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d: Validate accepted invalid params", i)
		}
	}
}

func TestNewIsFullyCharged(t *testing.T) {
	b := New(DefaultParams())
	if b.State() != FullyCharged {
		t.Errorf("new BBU state = %v, want FullyCharged", b.State())
	}
	if b.SOC() != 1 {
		t.Errorf("new BBU SOC = %v, want 1", b.SOC())
	}
	if b.ChargePower() != 0 {
		t.Errorf("fully charged BBU draws %v, want 0", b.ChargePower())
	}
}

// Paper §III-A / Fig 3: full charge at 5 A spends ~20 min in CC (transition
// at 52 V) and completes in ~36 min.
func TestFig3FullChargeAt5A(t *testing.T) {
	p := DefaultParams()
	ct := p.ChargeTime(5, 1)
	if ct < 34*time.Minute || ct > 38*time.Minute {
		t.Errorf("full charge time at 5A = %v, want ~36 min", ct)
	}
	// CC duration: soc_cv(5)·Q/5.
	cc := time.Duration(float64(p.SOCAtCV(5)) * float64(p.Capacity) / 5 * float64(time.Second))
	if cc < 19*time.Minute || cc > 21*time.Minute {
		t.Errorf("CC phase at 5A = %v, want ~20 min", cc)
	}
}

// Paper Fig 5: charge time is constant below ~22 % DOD at 5 A (pure CV).
func TestFig5FlatRegionBelow22PctDOD(t *testing.T) {
	p := DefaultParams()
	socCV := p.SOCAtCV(5)
	dodFlat := 1 - float64(socCV)
	if dodFlat < 0.20 || dodFlat > 0.25 {
		t.Errorf("pure-CV DOD boundary at 5A = %.3f, want ~0.22", dodFlat)
	}
	// Paper Fig 4: CV-phase time differs by less than 4 minutes across DODs.
	t10 := p.ChargeTime(5, 0.10)
	t20 := p.ChargeTime(5, 0.20)
	diff := (t20 - t10).Minutes()
	if math.Abs(diff) > 4 {
		t.Errorf("charge time at 10%% vs 20%% DOD differs by %.1f min, want <4 (flat region)", diff)
	}
	if t10 < 10*time.Minute || t10 > 18*time.Minute {
		t.Errorf("low-DOD CV-only charge time = %v, want 12-16 min", t10)
	}
}

// Paper §III-B: a 2 A current charges a <50 % discharged BBU within ~45 min,
// and 4 A charges a 70 % discharged BBU in ~40 min.
func TestFig5VariableChargerDesignPoints(t *testing.T) {
	p := DefaultParams()
	if ct := p.ChargeTime(2, 0.50); ct > 45*time.Minute {
		t.Errorf("2A at 50%% DOD = %v, want ≤45 min", ct)
	}
	if ct := p.ChargeTime(4, 0.70); ct > 45*time.Minute {
		t.Errorf("4A at 70%% DOD = %v, want ≤45 min", ct)
	}
	if ct := p.ChargeTime(5, 1); ct > 45*time.Minute {
		t.Errorf("5A at 100%% DOD = %v, want ≤45 min (worst case bound)", ct)
	}
	// 1 A is "considerably high": more than double the 45-minute bound at
	// full discharge.
	if ct := p.ChargeTime(1, 1); ct < 100*time.Minute {
		t.Errorf("1A at 100%% DOD = %v, want >100 min", ct)
	}
}

// Paper §V-B1: the CV tail is ≈ A·e^(−0.18 t[min]), i.e. τ ≈ 5.6 min.
func TestCVDecayConstant(t *testing.T) {
	tau := DefaultParams().Tau()
	perMin := 1 / tau.Minutes()
	if perMin < 0.14 || perMin > 0.20 {
		t.Errorf("CV decay rate = %.3f /min, want ~0.18", perMin)
	}
}

// Paper §III-A: initial CC charge power at 5 A is ~260 W per BBU.
func TestInitialChargePower(t *testing.T) {
	b := New(DefaultParams())
	fullDischarge(b)
	b.StartCharge(5)
	p0 := b.ChargePower()
	if p0 < 230*units.Watt || p0 > 270*units.Watt {
		t.Errorf("initial charge power at 5A = %v, want ~260 W", p0)
	}
	// Late in CC the power approaches Vcv·I = 262.5 W.
	b.StepCharge(19 * time.Minute)
	pLate := b.ChargePower()
	if pLate < 255*units.Watt || pLate > 265*units.Watt {
		t.Errorf("late CC charge power = %v, want ~262 W", pLate)
	}
}

func TestFullDischargeTakes90Seconds(t *testing.T) {
	b := New(DefaultParams())
	got := b.Discharge(3300*units.Watt, 90*time.Second)
	if math.Abs(got.KJ()-297) > 1e-9 {
		t.Errorf("full discharge energy = %v, want 297 kJ", got)
	}
	if b.State() != FullyDischarged {
		t.Errorf("state after full discharge = %v, want FullyDischarged", b.State())
	}
	if b.DOD() != 1 {
		t.Errorf("DOD = %v, want 1", b.DOD())
	}
}

func TestPartialDischargeDOD(t *testing.T) {
	b := New(DefaultParams())
	b.Discharge(3300*units.Watt, 45*time.Second)
	if math.Abs(float64(b.DOD())-0.5) > 1e-9 {
		t.Errorf("45s full-load discharge DOD = %v, want 0.5", b.DOD())
	}
	if b.State() != Discharging {
		t.Errorf("state = %v, want Discharging", b.State())
	}
}

func TestDischargeRateDependsOnLoad(t *testing.T) {
	b := New(DefaultParams())
	b.Discharge(1650*units.Watt, 90*time.Second) // half load
	if math.Abs(float64(b.DOD())-0.5) > 1e-9 {
		t.Errorf("half-load 90s discharge DOD = %v, want 0.5", b.DOD())
	}
}

func TestDischargeBeyondEmpty(t *testing.T) {
	b := New(DefaultParams())
	got := b.Discharge(3300*units.Watt, 200*time.Second)
	if math.Abs(got.KJ()-297) > 1e-6 {
		t.Errorf("over-discharge delivered %v, want capped at 297 kJ", got)
	}
	if b.State() != FullyDischarged {
		t.Errorf("state = %v, want FullyDischarged", b.State())
	}
}

func TestDischargePowerCappedAtMax(t *testing.T) {
	b := New(DefaultParams())
	got := b.Discharge(10000*units.Watt, 10*time.Second)
	want := units.EnergyOver(3300*units.Watt, 10*time.Second)
	if math.Abs(float64(got-want)) > 1e-6 {
		t.Errorf("over-power discharge delivered %v, want %v", got, want)
	}
}

func TestChargeDischargeRoundTrip(t *testing.T) {
	b := New(DefaultParams())
	fullDischarge(b)
	b.StartCharge(5)
	for b.State() == Charging {
		b.StepCharge(time.Second)
	}
	if b.State() != FullyCharged {
		t.Fatalf("state after charging = %v", b.State())
	}
	if math.Abs(float64(b.SOC())-1) > 1e-9 {
		t.Errorf("SOC after full charge = %v, want 1", b.SOC())
	}
	// And it can discharge the full energy again.
	got := b.Discharge(3300*units.Watt, 90*time.Second)
	if math.Abs(got.KJ()-297) > 1e-6 {
		t.Errorf("post-recharge discharge = %v, want 297 kJ", got)
	}
}

func TestStepChargeMatchesChargeTime(t *testing.T) {
	p := DefaultParams()
	for _, tc := range []struct {
		i   units.Current
		dod units.Fraction
	}{{5, 1}, {5, 0.3}, {2, 0.5}, {3, 0.8}, {1, 1}, {4, 0.1}} {
		want := p.ChargeTime(tc.i, tc.dod)
		b := New(p)
		b.Discharge(3300*units.Watt, time.Duration(float64(tc.dod)*90*float64(time.Second)))
		b.StartCharge(tc.i)
		var elapsed time.Duration
		const step = 500 * time.Millisecond
		for b.State() == Charging && elapsed < 10*time.Hour {
			b.StepCharge(step)
			elapsed += step
		}
		diff := (elapsed - want).Seconds()
		if math.Abs(diff) > 1 {
			t.Errorf("I=%v dod=%v: stepped completion %v vs analytic %v", tc.i, tc.dod, elapsed, want)
		}
	}
}

func TestStepChargeLargeSingleStep(t *testing.T) {
	// One giant step must land exactly at full without overshoot.
	b := New(DefaultParams())
	fullDischarge(b)
	b.StartCharge(5)
	b.StepCharge(5 * time.Hour)
	if b.State() != FullyCharged || b.SOC() != 1 {
		t.Errorf("after huge step: state=%v soc=%v", b.State(), b.SOC())
	}
}

func TestChargeEnergyExceedsDischargeEnergy(t *testing.T) {
	// Conversion/overpotential losses: energy absorbed while charging must
	// be at least the energy discharged, and within a sane efficiency bound.
	b := New(DefaultParams())
	out := b.Discharge(3300*units.Watt, 90*time.Second)
	b.StartCharge(5)
	var in units.Energy
	for b.State() == Charging {
		in += b.StepCharge(time.Second)
	}
	eff := float64(out) / float64(in)
	if eff >= 1 {
		t.Errorf("round-trip efficiency %v ≥ 1 violates thermodynamics", eff)
	}
	if eff < 0.5 {
		t.Errorf("round-trip efficiency %v implausibly low", eff)
	}
}

func TestManualOverrideMidCharge(t *testing.T) {
	b := New(DefaultParams())
	fullDischarge(b)
	b.StartCharge(5)
	b.StepCharge(5 * time.Minute)
	b.SetChargeCurrent(1)
	if b.Current() != 1 {
		t.Errorf("current after override = %v, want 1 A", b.Current())
	}
	b.StepCharge(time.Minute)
	if got := b.Current(); got != 1 {
		t.Errorf("current after stepping at override = %v, want 1 A", got)
	}
}

func TestOverrideClampedToHardwareRange(t *testing.T) {
	b := New(DefaultParams())
	fullDischarge(b)
	b.StartCharge(10)
	if b.Setpoint() != 5 {
		t.Errorf("setpoint clamped to %v, want 5 A", b.Setpoint())
	}
	b.SetChargeCurrent(0.2)
	if b.Setpoint() != 1 {
		t.Errorf("setpoint clamped to %v, want 1 A", b.Setpoint())
	}
}

func TestSetChargeCurrentIgnoredWhenNotCharging(t *testing.T) {
	b := New(DefaultParams())
	b.SetChargeCurrent(3)
	if b.Setpoint() != 0 || b.State() != FullyCharged {
		t.Errorf("override while FullyCharged changed state: %v %v", b.Setpoint(), b.State())
	}
}

func TestStartChargeOnFullBatteryStaysFull(t *testing.T) {
	b := New(DefaultParams())
	b.StartCharge(5)
	if b.State() != FullyCharged {
		t.Errorf("state = %v, want FullyCharged", b.State())
	}
}

func TestDischargeInterruptsCharging(t *testing.T) {
	b := New(DefaultParams())
	fullDischarge(b)
	b.StartCharge(5)
	b.StepCharge(10 * time.Minute)
	b.Discharge(3300*units.Watt, 5*time.Second)
	if b.State() != Discharging {
		t.Errorf("state = %v, want Discharging", b.State())
	}
	if b.ChargePower() != 0 {
		t.Errorf("charge power while discharging = %v", b.ChargePower())
	}
}

func TestChargeTimeMonotoneInCurrent(t *testing.T) {
	p := DefaultParams()
	for dod := 0.05; dod <= 1.0; dod += 0.05 {
		prev := time.Duration(math.MaxInt64)
		for i := units.Current(1); i <= 5; i += 0.5 {
			ct := p.ChargeTime(i, units.Fraction(dod))
			if ct > prev {
				t.Fatalf("charge time increased with current at dod=%.2f i=%v: %v > %v", dod, i, ct, prev)
			}
			prev = ct
		}
	}
}

func TestChargeTimeMonotoneInDOD(t *testing.T) {
	p := DefaultParams()
	for i := units.Current(1); i <= 5; i += 1 {
		prev := time.Duration(-1)
		for dod := 0.0; dod <= 1.0; dod += 0.02 {
			ct := p.ChargeTime(i, units.Fraction(dod))
			if ct < prev {
				t.Fatalf("charge time decreased with DOD at i=%v dod=%.2f", i, dod)
			}
			prev = ct
		}
	}
}

func TestChargeTimeZeroAtZeroDOD(t *testing.T) {
	p := DefaultParams()
	if ct := p.ChargeTime(5, 0); ct != 0 {
		t.Errorf("charge time at 0 DOD = %v, want 0", ct)
	}
}

func TestRequiredCurrent(t *testing.T) {
	p := DefaultParams()
	// Full discharge within 45 min is feasible and needs a high current.
	i, ok := p.RequiredCurrent(1, 45*time.Minute, 0.01)
	if !ok || i < 3 {
		t.Errorf("RequiredCurrent(100%%, 45min) = %v/%v, want ≥3 A, ok", i, ok)
	}
	if ct := p.ChargeTime(i, 1); ct > 45*time.Minute {
		t.Errorf("returned current %v misses the deadline: %v", i, ct)
	}
	// 30 minutes at full DOD is infeasible even at 5 A (~36 min needed).
	if _, ok := p.RequiredCurrent(1, 30*time.Minute, 0.01); ok {
		t.Error("RequiredCurrent(100%, 30min) reported feasible, want infeasible")
	}
	// Tiny DOD is satisfied at the minimum current for a 90-minute SLA.
	i, ok = p.RequiredCurrent(0.05, 90*time.Minute, 0.01)
	if !ok || i != p.MinChargeI {
		t.Errorf("RequiredCurrent(5%%, 90min) = %v/%v, want min current, ok", i, ok)
	}
}

func TestRequiredCurrentMeetsDeadlineProperty(t *testing.T) {
	p := DefaultParams()
	prop := func(dodRaw, dlRaw uint8) bool {
		dod := units.Fraction(dodRaw%101) / 100
		deadline := time.Duration(20+int(dlRaw)%120) * time.Minute
		i, ok := p.RequiredCurrent(dod, deadline, 0.01)
		if i < p.MinChargeI || i > p.MaxChargeI {
			return false
		}
		if ok {
			return p.ChargeTime(i, dod) <= deadline
		}
		return p.ChargeTime(p.MaxChargeI, dod) > deadline
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSOCBoundsProperty(t *testing.T) {
	// Arbitrary interleavings of discharge and charge steps keep SOC in [0,1].
	prop := func(ops []byte) bool {
		b := New(DefaultParams())
		for _, op := range ops {
			switch op % 4 {
			case 0:
				b.Discharge(units.Power(op)*50, time.Duration(op%10)*time.Second)
			case 1:
				b.StartCharge(units.Current(op % 7))
			case 2:
				b.StepCharge(time.Duration(op) * time.Second)
			case 3:
				b.SetChargeCurrent(units.Current(op % 9))
			}
			if b.soc < 0 || b.soc > 1+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestProfileFig3Shape(t *testing.T) {
	p := DefaultParams()
	pts := Profile(p, 5, 1, 10*time.Second)
	if len(pts) < 100 {
		t.Fatalf("profile too short: %d points", len(pts))
	}
	// Current holds at 5 A through CC then decays.
	if pts[1].Current != 5 {
		t.Errorf("early profile current = %v, want 5 A", pts[1].Current)
	}
	last := pts[len(pts)-1]
	if last.SOC < 0.999 {
		t.Errorf("profile end SOC = %v, want 1", last.SOC)
	}
	total := last.T
	if total < 34*time.Minute || total > 38*time.Minute {
		t.Errorf("profile duration %v, want ~36 min", total)
	}
	// Voltage is monotone nondecreasing up to the CV plateau.
	for i := 1; i < len(pts); i++ {
		if pts[i].Voltage < pts[i-1].Voltage-1e-9 && pts[i].SOC < 1 {
			t.Fatalf("voltage decreased during charge at %v", pts[i].T)
		}
	}
}

func TestProfileZeroDOD(t *testing.T) {
	pts := Profile(DefaultParams(), 5, 0, time.Second)
	if len(pts) != 1 || pts[0].SOC != 1 {
		t.Errorf("zero-DOD profile = %+v, want single full point", pts)
	}
}

func TestCloneIndependence(t *testing.T) {
	b := New(DefaultParams())
	fullDischarge(b)
	c := b.Clone()
	c.StartCharge(5)
	c.StepCharge(time.Hour)
	if b.State() != FullyDischarged {
		t.Errorf("mutating clone changed original: %v", b.State())
	}
}

func TestStateStrings(t *testing.T) {
	want := map[State]string{
		FullyCharged:    "FullyCharged",
		Charging:        "Charging",
		Discharging:     "Discharging",
		FullyDischarged: "FullyDischarged",
		State(99):       "State(99)",
	}
	for s, w := range want {
		if got := s.String(); got != w {
			t.Errorf("State(%d).String() = %q, want %q", int(s), got, w)
		}
	}
}

func TestTauValue(t *testing.T) {
	tau := DefaultParams().Tau()
	if tau < 370*time.Second || tau > 390*time.Second {
		t.Errorf("tau = %v, want ~380 s", tau)
	}
}
