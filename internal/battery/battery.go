// Package battery models the rack battery backup unit (BBU) described in the
// paper: a Li-ion pack charged with the two-step constant-current /
// constant-voltage (CC-CV) method.
//
// # Model
//
// State of charge s ∈ [0,1]. Open-circuit voltage is linear in s,
// OCV(s) = V0 + k·s, and terminal voltage while charging is
// V = OCV(s) + I·R with internal resistance R. The charger drives a constant
// current Ic until V reaches the CV setpoint Vcv, then holds Vcv so the
// current decays exponentially with time constant τ = R·Q/k; charging
// terminates at the cutoff current Imin. Full charge (s = 1) is defined as
// the cutoff point, OCV(1) = Vcv − Imin·R, so CV always terminates exactly
// at s = 1.
//
// # Calibration
//
// The default parameters reproduce the paper's measured anchor points
// (Figs 3–5, §III, §V-B1):
//
//   - a full charge at 5 A spends ≈20 min in CC (transition at 52 V) and
//     ≈16 min in CV, completing in ≈36 min;
//   - charge time is independent of DOD below ≈22 % DOD (pure-CV region);
//   - the CV current/power tail decays like e^(−0.18·t[min]);
//   - initial CC charge power at 5 A is ≈260 W per BBU;
//   - a full discharge is 3300 W of IT load for 90 s (297 kJ).
package battery

import (
	"fmt"
	"math"
	"time"

	"coordcharge/internal/units"
)

// Params are the electrochemical and charger-hardware constants of a BBU.
type Params struct {
	// Capacity is the coulombic capacity Q between empty and the CV cutoff.
	Capacity units.Charge
	// OCVEmpty is the open-circuit voltage V0 at zero state of charge.
	OCVEmpty units.Voltage
	// OCVSpan is k = OCV(1) − OCV(0).
	OCVSpan units.Voltage
	// InternalR is the internal resistance R in ohms.
	InternalR float64
	// VCV is the constant-voltage setpoint.
	VCV units.Voltage
	// CutoffI is the CV termination current.
	CutoffI units.Current
	// FullEnergy is the usable discharge energy of a full battery (the
	// paper's "full discharge": 3300 W × 90 s).
	FullEnergy units.Energy
	// MaxDischarge is the maximum power the BBU can deliver.
	MaxDischarge units.Power
	// MinChargeI and MaxChargeI bound the charger hardware's CC setpoint
	// (manual-override range; the recommended Li-ion CC floor is 1 A).
	MinChargeI units.Current
	MaxChargeI units.Current
	// FadePerCycle is the fractional usable-capacity loss per equivalent
	// full discharge cycle — the battery-aging concern the paper's related
	// work highlights (Liu et al.). Zero (the default) disables aging.
	FadePerCycle float64
	// MinHealth floors capacity fade (zero selects 0.6: packs are replaced
	// well before losing 40 % of capacity).
	MinHealth float64
}

// DefaultParams returns the calibrated production-BBU parameters (see the
// package comment and DESIGN.md §3).
func DefaultParams() Params {
	const (
		q      = 7748  // A·s  (≈2.15 Ah)
		k      = 6     // V
		r      = 0.294 // Ω
		vcv    = 52.5  // V
		cutoff = 0.4   // A
	)
	return Params{
		Capacity:     units.Charge(q),
		OCVEmpty:     units.Voltage(vcv - cutoff*r - k),
		OCVSpan:      units.Voltage(k),
		InternalR:    r,
		VCV:          units.Voltage(vcv),
		CutoffI:      units.Current(cutoff),
		FullEnergy:   units.EnergyOver(3300*units.Watt, 90*time.Second),
		MaxDischarge: 3300 * units.Watt,
		MinChargeI:   1 * units.Ampere,
		MaxChargeI:   5 * units.Ampere,
	}
}

// Validate reports whether the parameters are physically consistent.
func (p Params) Validate() error {
	switch {
	case p.Capacity <= 0:
		return fmt.Errorf("battery: capacity %v must be positive", p.Capacity)
	case p.OCVSpan <= 0:
		return fmt.Errorf("battery: OCV span %v must be positive", p.OCVSpan)
	case p.InternalR <= 0:
		return fmt.Errorf("battery: internal resistance %v must be positive", p.InternalR)
	case p.CutoffI <= 0:
		return fmt.Errorf("battery: cutoff current %v must be positive", p.CutoffI)
	case p.FullEnergy <= 0:
		return fmt.Errorf("battery: full energy %v must be positive", p.FullEnergy)
	case p.MaxDischarge <= 0:
		return fmt.Errorf("battery: max discharge %v must be positive", p.MaxDischarge)
	case p.MinChargeI <= p.CutoffI:
		return fmt.Errorf("battery: min charge current %v must exceed cutoff %v", p.MinChargeI, p.CutoffI)
	case p.MaxChargeI < p.MinChargeI:
		return fmt.Errorf("battery: max charge current %v below min %v", p.MaxChargeI, p.MinChargeI)
	case p.FadePerCycle < 0 || p.FadePerCycle > 0.01:
		return fmt.Errorf("battery: fade per cycle %v out of [0, 0.01]", p.FadePerCycle)
	case p.MinHealth < 0 || p.MinHealth > 1:
		return fmt.Errorf("battery: min health %v out of [0, 1]", p.MinHealth)
	}
	ocvFull := float64(p.OCVEmpty) + float64(p.OCVSpan)
	wantFull := float64(p.VCV) - float64(p.CutoffI)*p.InternalR
	if math.Abs(ocvFull-wantFull) > 1e-6 {
		return fmt.Errorf("battery: OCV(1)=%.4f V must equal VCV−Imin·R=%.4f V so CV terminates at full charge", ocvFull, wantFull)
	}
	return nil
}

// OCV returns the open-circuit voltage at state of charge s.
func (p Params) OCV(s units.Fraction) units.Voltage {
	return p.OCVEmpty + units.Voltage(float64(p.OCVSpan)*float64(s))
}

// Tau returns the CV-phase exponential time constant τ = R·Q/k.
func (p Params) Tau() time.Duration {
	sec := p.InternalR * float64(p.Capacity) / float64(p.OCVSpan)
	return time.Duration(sec * float64(time.Second))
}

// SOCAtCV returns the state of charge at which a charger driving constant
// current i hits the CV voltage limit: soc_cv(i) = (Vcv − i·R − V0)/k.
// Above this SOC the charge is voltage-limited (CV mode).
func (p Params) SOCAtCV(i units.Current) units.Fraction {
	s := (float64(p.VCV) - float64(i)*p.InternalR - float64(p.OCVEmpty)) / float64(p.OCVSpan)
	return units.Fraction(s)
}

// State is the lifecycle state of a BBU, mirroring Fig 8(a) of the paper.
type State int

// BBU states.
const (
	FullyCharged State = iota
	Charging
	Discharging
	FullyDischarged
)

// String returns the state name.
func (s State) String() string {
	switch s {
	case FullyCharged:
		return "FullyCharged"
	case Charging:
		return "Charging"
	case Discharging:
		return "Discharging"
	case FullyDischarged:
		return "FullyDischarged"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// BBU is a battery backup unit instance. Construct with New; the zero value
// is not usable.
type BBU struct {
	p        Params
	soc      float64
	state    State
	setpoint units.Current // active CC setpoint while charging
	cycles   float64       // equivalent full cycles discharged (aging)
}

// New returns a fully charged BBU with the given parameters. It panics if
// the parameters are invalid: a bad battery model is a programming error
// every experiment would silently inherit.
func New(p Params) *BBU {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return &BBU{p: p, soc: 1, state: FullyCharged}
}

// Clone returns an independent copy, used by controllers for what-if
// charge-time prediction.
func (b *BBU) Clone() *BBU {
	c := *b
	return &c
}

// Params returns the BBU's parameters.
func (b *BBU) Params() Params { return b.p }

// State returns the current lifecycle state.
func (b *BBU) State() State { return b.state }

// SOC returns the state of charge in [0,1].
func (b *BBU) SOC() units.Fraction { return units.Fraction(b.soc) }

// DOD returns the depth of discharge, 1 − SOC.
func (b *BBU) DOD() units.Fraction { return units.Fraction(1 - b.soc) }

// Setpoint returns the active CC charging-current setpoint (meaningful while
// Charging).
func (b *BBU) Setpoint() units.Current { return b.setpoint }

// Health returns the fraction of nominal usable capacity remaining after
// cycle aging: 1 with aging disabled, decreasing by FadePerCycle per
// equivalent full cycle down to the MinHealth floor.
func (b *BBU) Health() units.Fraction {
	if b.p.FadePerCycle == 0 {
		return 1
	}
	floor := b.p.MinHealth
	if floor == 0 {
		floor = 0.6
	}
	h := 1 - b.p.FadePerCycle*b.cycles
	if h < floor {
		h = floor
	}
	return units.Fraction(h)
}

// EquivalentCycles returns the cumulative discharge, in equivalent full
// cycles of the nominal capacity.
func (b *BBU) EquivalentCycles() float64 { return b.cycles }

// usableEnergy is the aged full-discharge energy.
func (b *BBU) usableEnergy() units.Energy {
	return units.Energy(float64(b.p.FullEnergy) * float64(b.Health()))
}

// Discharge drains the BBU at power p for dt, supplying the rack during an
// input-power loss. It returns the energy actually delivered, which falls
// short of p·dt only if the battery empties (the battery can then no longer
// carry the load: a power outage for the IT equipment). Requests above
// MaxDischarge are truncated to MaxDischarge. Discharged energy accrues
// cycle aging when FadePerCycle is set.
//
// A Discharge arriving while Charging deterministically suspends the charge:
// the CC setpoint is cleared (no stuck-CV state survives the interrupt) and
// the state leaves Charging even for a zero-power or zero-duration call, so
// an input-power loss always lands the BBU in Discharging or FullyDischarged
// regardless of where in the CC/CV sequence it struck. SOC never goes
// negative: delivery is truncated at empty.
func (b *BBU) Discharge(p units.Power, dt time.Duration) units.Energy {
	if b.state == Charging {
		// Interrupt the charge before draining: a charger with no input
		// power holds no setpoint.
		b.setpoint = 0
		b.state = Discharging
	}
	if p <= 0 || dt <= 0 {
		return 0
	}
	if p > b.p.MaxDischarge {
		p = b.p.MaxDischarge
	}
	usable := b.usableEnergy()
	want := units.EnergyOver(p, dt)
	have := units.Energy(b.soc * float64(usable))
	got := want
	if got > have {
		got = have
	}
	b.soc -= float64(got) / float64(usable)
	b.cycles += float64(got) / float64(b.p.FullEnergy)
	if b.soc <= 1e-12 {
		b.soc = 0
		b.state = FullyDischarged
	} else {
		b.state = Discharging
	}
	return got
}

// StartCharge begins (or restarts) a CC-CV charge sequence with the given CC
// setpoint, clamped to the hardware range. A fully charged battery stays
// FullyCharged and holds no setpoint.
func (b *BBU) StartCharge(i units.Current) {
	if b.soc >= 1 {
		b.state = FullyCharged
		b.setpoint = 0
		return
	}
	b.setpoint = i.Clamp(b.p.MinChargeI, b.p.MaxChargeI)
	b.state = Charging
}

// SetChargeCurrent overrides the CC setpoint mid-charge (the paper's manual
// override, used by the Dynamo controller). It is a no-op unless Charging.
func (b *BBU) SetChargeCurrent(i units.Current) {
	if b.state != Charging {
		return
	}
	b.setpoint = i.Clamp(b.p.MinChargeI, b.p.MaxChargeI)
}

// Current returns the instantaneous charging current: the CC setpoint while
// current-limited, or the decaying CV current (Vcv − OCV)/R once
// voltage-limited. Zero when not charging.
func (b *BBU) Current() units.Current {
	if b.state != Charging {
		return 0
	}
	cv := units.Current((float64(b.p.VCV) - float64(b.p.OCV(units.Fraction(b.soc)))) / b.p.InternalR)
	if cv < b.setpoint {
		return cv
	}
	return b.setpoint
}

// Voltage returns the instantaneous terminal voltage while charging (OCV +
// I·R, capped at Vcv), or the OCV otherwise.
func (b *BBU) Voltage() units.Voltage {
	ocv := b.p.OCV(units.Fraction(b.soc))
	if b.state != Charging {
		return ocv
	}
	v := ocv + units.Voltage(float64(b.Current())*b.p.InternalR)
	if v > b.p.VCV {
		v = b.p.VCV
	}
	return v
}

// ChargePower returns the instantaneous battery-side charging power V·I.
func (b *BBU) ChargePower() units.Power {
	if b.state != Charging {
		return 0
	}
	return units.PowerOf(b.Voltage(), b.Current())
}

// StepCharge advances an in-progress charge by dt using the closed-form CC
// and CV solutions (no numerical drift), returning the battery-side energy
// absorbed during the step. It is a no-op unless Charging.
func (b *BBU) StepCharge(dt time.Duration) units.Energy {
	if b.state != Charging || dt <= 0 {
		return 0
	}
	var absorbed units.Energy
	remaining := dt.Seconds()
	q := float64(b.p.Capacity)
	k := float64(b.p.OCVSpan)
	r := b.p.InternalR
	vcv := float64(b.p.VCV)
	tau := r * q / k
	cutU := float64(b.p.CutoffI) * r
	for remaining > 1e-12 {
		i := float64(b.setpoint)
		socCV := float64(b.p.SOCAtCV(b.setpoint))
		if b.soc < socCV {
			// CC phase: soc rises linearly at I/Q; OCV rises linearly, so the
			// trapezoid integral of (OCV + I·R)·I is exact.
			tToCV := (socCV - b.soc) * q / i
			step := math.Min(remaining, tToCV)
			dsoc := i * step / q
			vMid := float64(b.p.OCV(units.Fraction(b.soc+dsoc/2))) + i*r
			absorbed += units.Energy(vMid * i * step)
			b.soc += dsoc
			remaining -= step
			continue
		}
		// CV phase: u = Vcv − OCV decays exponentially with τ; terminate at
		// the cutoff, which by construction is soc = 1.
		u0 := vcv - float64(b.p.OCV(units.Fraction(b.soc)))
		if u0 <= cutU+1e-12 {
			b.soc = 1
			b.state = FullyCharged
			b.setpoint = 0
			return absorbed
		}
		tToDone := tau * math.Log(u0/cutU)
		step := math.Min(remaining, tToDone)
		u1 := u0 * math.Exp(-step/tau)
		dsoc := (u0 - u1) / k
		// ∫ Vcv·I dt with I = u/R: charge moved is Q·Δsoc.
		absorbed += units.Energy(vcv * q * dsoc)
		b.soc += dsoc
		remaining -= step
		if step >= tToDone-1e-12 {
			b.soc = 1
			b.state = FullyCharged
			b.setpoint = 0
			return absorbed
		}
	}
	return absorbed
}

// AdvanceTo advances an in-progress charge by d, bit-identically to calling
// StepCharge(quantum) for each full quantum in d followed by StepCharge with
// the remainder, and returns the total battery-side energy absorbed (the sum
// of the per-call returns, accumulated in call order). It is the analytic
// fast path for time-skipping simulation kernels: quantum-aligned CC and CV
// steps are executed with their per-step constants hoisted (the CC soc
// increment and the CV exponential decay factor are the same float64 values
// StepCharge recomputes every call, because quantum is constant), while the
// CC→CV crossing step, any completing step, and the trailing remainder are
// delegated to the real StepCharge — each occurs at most once per charge, so
// the delegation is O(1). A non-positive quantum advances in one StepCharge
// call.
func (b *BBU) AdvanceTo(d, quantum time.Duration) units.Energy {
	if b.state != Charging || d <= 0 {
		return 0
	}
	if quantum <= 0 || quantum >= d {
		return b.StepCharge(d)
	}
	var absorbed units.Energy
	qs := quantum.Seconds()
	q := float64(b.p.Capacity)
	k := float64(b.p.OCVSpan)
	r := b.p.InternalR
	vcv := float64(b.p.VCV)
	tau := r * q / k
	cutU := float64(b.p.CutoffI) * r
	i := float64(b.setpoint)
	socCV := float64(b.p.SOCAtCV(b.setpoint))
	dsocCC := i * qs / q                // per-step soc rise of a pure-CC step
	expCV := math.Exp(-qs / tau)        // per-step decay of a pure-CV step
	n := int(d / quantum)               // full quantum steps
	rem := d - time.Duration(n)*quantum // trailing partial step
	for t := 0; t < n && b.state == Charging; t++ {
		if b.soc < socCV {
			if tToCV := (socCV - b.soc) * q / i; tToCV >= qs {
				// Pure CC step: StepCharge would pick step = quantum, land
				// short of the CV boundary, and exit its loop with exactly
				// zero time remaining.
				vMid := float64(b.p.OCV(units.Fraction(b.soc+dsocCC/2))) + i*r
				absorbed += units.Energy(vMid * i * qs)
				b.soc += dsocCC
				continue
			}
			// CC→CV crossing inside this step: delegate.
			absorbed += b.StepCharge(quantum)
			continue
		}
		u0 := vcv - float64(b.p.OCV(units.Fraction(b.soc)))
		if u0 <= cutU+1e-12 {
			// At the cutoff: StepCharge completes immediately.
			absorbed += b.StepCharge(quantum)
			continue
		}
		if tToDone := tau * math.Log(u0/cutU); qs >= tToDone-1e-12 {
			// Completing CV step: delegate so the completion clamp and the
			// partial-step energy match StepCharge exactly.
			absorbed += b.StepCharge(quantum)
			continue
		}
		// Pure CV step: u decays by the hoisted per-quantum factor.
		u1 := u0 * expCV
		dsoc := (u0 - u1) / k
		absorbed += units.Energy(vcv * q * dsoc)
		b.soc += dsoc
	}
	if rem > 0 && b.state == Charging {
		absorbed += b.StepCharge(rem)
	}
	return absorbed
}

// ChargeTime returns the closed-form duration to charge from the given depth
// of discharge to full at CC setpoint i (clamped to hardware bounds):
// the CC time to reach soc_cv(i) plus the CV tail τ·ln(I_start/Imin).
// A battery already at the cutoff charges in zero time.
func (p Params) ChargeTime(i units.Current, dod units.Fraction) time.Duration {
	i = i.Clamp(p.MinChargeI, p.MaxChargeI)
	soc := 1 - float64(dod.Clamp01())
	q := float64(p.Capacity)
	k := float64(p.OCVSpan)
	r := p.InternalR
	tau := r * q / k
	socCV := float64(p.SOCAtCV(i))
	var sec float64
	if soc < socCV {
		sec += (socCV - soc) * q / float64(i)
		soc = socCV
	}
	// CV start current: voltage-limited, but never above the setpoint.
	iStart := math.Min(float64(i), (float64(p.VCV)-float64(p.OCV(units.Fraction(soc))))/r)
	if iStart > float64(p.CutoffI) {
		sec += tau * math.Log(iStart/float64(p.CutoffI))
	}
	return time.Duration(sec * float64(time.Second))
}

// RequiredCurrent returns the minimum CC setpoint within hardware bounds
// that charges a battery from dod to full within deadline, and whether such
// a setpoint exists. Charge time is monotone nonincreasing in current, so a
// bisection over [MinChargeI, MaxChargeI] suffices; the result is rounded up
// to resolution (pass 0 for a 0.01 A default).
func (p Params) RequiredCurrent(dod units.Fraction, deadline time.Duration, resolution units.Current) (units.Current, bool) {
	if resolution <= 0 {
		resolution = 0.01
	}
	if p.ChargeTime(p.MaxChargeI, dod) > deadline {
		return p.MaxChargeI, false
	}
	if p.ChargeTime(p.MinChargeI, dod) <= deadline {
		return p.MinChargeI, true
	}
	lo, hi := p.MinChargeI, p.MaxChargeI // T(lo) > deadline ≥ T(hi)
	for hi-lo > resolution {
		mid := (lo + hi) / 2
		if p.ChargeTime(mid, dod) <= deadline {
			hi = mid
		} else {
			lo = mid
		}
	}
	// Round up to the resolution grid so the returned current still meets
	// the deadline.
	steps := math.Ceil(float64(hi)/float64(resolution) - 1e-9)
	return units.Current(steps) * resolution, true
}

// ProfilePoint is one sample of a charge profile.
type ProfilePoint struct {
	T       time.Duration
	Power   units.Power
	Current units.Current
	Voltage units.Voltage
	SOC     units.Fraction
}

// Profile simulates a charge from dod at CC setpoint i, sampled every step,
// and returns the time series through completion. It is the data behind
// Figs 3 and 4.
func Profile(p Params, i units.Current, dod units.Fraction, step time.Duration) []ProfilePoint {
	b := New(p)
	b.soc = 1 - float64(dod.Clamp01())
	if b.soc >= 1 {
		return []ProfilePoint{{T: 0, SOC: 1}}
	}
	b.state = Discharging
	b.StartCharge(i)
	pts := []ProfilePoint{{T: 0, Power: b.ChargePower(), Current: b.Current(), Voltage: b.Voltage(), SOC: b.SOC()}}
	for t := step; b.State() == Charging; t += step {
		b.StepCharge(step)
		pts = append(pts, ProfilePoint{T: t, Power: b.ChargePower(), Current: b.Current(), Voltage: b.Voltage(), SOC: b.SOC()})
	}
	return pts
}
