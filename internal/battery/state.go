package battery

import "coordcharge/internal/units"

// PackState is a RackPack's serializable mutable state. The surface and the
// physical constants (watts per amp, CV rate, cutoff) are construction-time
// configuration and are rebuilt from the scenario spec on restore, not
// checkpointed.
type PackState struct {
	Setpoint units.Current  `json:"setpoint"`
	QRemain  float64        `json:"q_remain"`
	QInitial float64        `json:"q_initial"`
	DOD0     units.Fraction `json:"dod0"`
	Charging bool           `json:"charging"`
	Deficit  float64        `json:"deficit"`
}

// ExportState captures the pack's mutable state.
func (rp *RackPack) ExportState() PackState {
	return PackState{
		Setpoint: rp.setpoint,
		QRemain:  rp.qRemain,
		QInitial: rp.qInitial,
		DOD0:     rp.dod0,
		Charging: rp.charging,
		Deficit:  rp.deficit,
	}
}

// RestoreState overwrites the pack's mutable state from a checkpoint. The
// pack keeps its constructed surface and constants.
func (rp *RackPack) RestoreState(st PackState) {
	rp.setpoint = st.Setpoint
	rp.qRemain = st.QRemain
	rp.qInitial = st.QInitial
	rp.dod0 = st.DOD0
	rp.charging = st.Charging
	rp.deficit = st.Deficit
}
