package battery

import (
	"testing"
	"time"

	"coordcharge/internal/units"
)

func BenchmarkBBUStepCharge(b *testing.B) {
	p := DefaultParams()
	bb := New(p)
	for i := 0; i < b.N; i++ {
		if bb.State() != Charging {
			bb.Discharge(3300*units.Watt, 90*time.Second)
			bb.StartCharge(5)
		}
		bb.StepCharge(3 * time.Second)
	}
}

func BenchmarkChargeTimeAnalytic(b *testing.B) {
	p := DefaultParams()
	for i := 0; i < b.N; i++ {
		_ = p.ChargeTime(units.Current(1+i%5), units.Fraction(i%101)/100)
	}
}

func BenchmarkSurfaceChargeTime(b *testing.B) {
	s := Fig5Surface()
	for i := 0; i < b.N; i++ {
		_ = s.ChargeTime(units.Current(1)+units.Current(i%41)/10, units.Fraction(i%101)/100)
	}
}

func BenchmarkSurfaceRequiredCurrent(b *testing.B) {
	s := Fig5Surface()
	for i := 0; i < b.N; i++ {
		_, _ = s.RequiredCurrent(units.Fraction(i%101)/100, 30*time.Minute, 1)
	}
}

func BenchmarkRackPackStep(b *testing.B) {
	s := Fig5Surface()
	rp := NewRackPack(s)
	for i := 0; i < b.N; i++ {
		if !rp.Charging() {
			rp.StartCharge(5, 1)
		}
		rp.Step(3 * time.Second)
	}
}
