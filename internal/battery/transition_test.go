package battery

import (
	"math"
	"testing"
	"time"

	"coordcharge/internal/units"
)

// A discharge must interrupt a BBU cleanly from every lifecycle state: the
// grid event does not wait for the CC/CV sequence to finish, and the state
// machine may not leave a stale setpoint (or a negative SOC) behind.

func TestBBUDischargeInterruptsEveryState(t *testing.T) {
	p := DefaultParams()
	drain := func(b *BBU) units.Energy { return b.Discharge(100*units.Watt, time.Minute) }

	t.Run("FullyCharged", func(t *testing.T) {
		b := New(p)
		if got := drain(b); got != units.EnergyOver(100*units.Watt, time.Minute) {
			t.Fatalf("full battery delivered %v", got)
		}
		if b.State() != Discharging {
			t.Fatalf("state = %v, want Discharging", b.State())
		}
		if b.Setpoint() != 0 {
			t.Fatalf("setpoint = %v after discharge, want 0", b.Setpoint())
		}
	})

	t.Run("ChargingCC", func(t *testing.T) {
		b := New(p)
		b.Discharge(p.MaxDischarge, 45*time.Second) // drain to half
		b.StartCharge(p.MaxChargeI)                 // restart in CC
		if b.State() != Charging {
			t.Fatalf("setup: state = %v, want Charging", b.State())
		}
		soc := float64(b.SOC())
		got := drain(b)
		if b.State() != Discharging {
			t.Fatalf("state = %v, want Discharging", b.State())
		}
		if b.Setpoint() != 0 {
			t.Fatalf("setpoint survived the interrupt: %v", b.Setpoint())
		}
		wantSOC := soc - float64(got)/float64(p.FullEnergy)
		if math.Abs(float64(b.SOC())-wantSOC) > 1e-9 {
			t.Fatalf("SOC = %v, want %v", b.SOC(), wantSOC)
		}
	})

	t.Run("ChargingCV", func(t *testing.T) {
		b := New(p)
		b.Discharge(100*units.Watt, time.Minute)
		b.StartCharge(p.MaxChargeI)
		// A shallow discharge at a high setpoint starts voltage-limited
		// (Current < Setpoint); interrupting here must still clear the
		// setpoint — the "stuck-CV" hazard.
		if b.Current() >= b.Setpoint() {
			t.Fatalf("setup: want CV phase, current %v setpoint %v", b.Current(), b.Setpoint())
		}
		drain(b)
		if b.State() != Discharging || b.Setpoint() != 0 {
			t.Fatalf("state %v setpoint %v after CV interrupt", b.State(), b.Setpoint())
		}
	})

	t.Run("ZeroDurationWhileCharging", func(t *testing.T) {
		b := New(p)
		b.Discharge(100*units.Watt, time.Minute)
		b.StartCharge(1 * units.Ampere)
		// Even a zero-power/zero-duration discharge (input lost at an idle
		// instant) must leave Charging.
		if got := b.Discharge(0, 0); got != 0 {
			t.Fatalf("zero discharge delivered %v", got)
		}
		if b.State() != Discharging || b.Setpoint() != 0 {
			t.Fatalf("state %v setpoint %v after zero-duration interrupt", b.State(), b.Setpoint())
		}
	})

	t.Run("Discharging", func(t *testing.T) {
		b := New(p)
		drain(b)
		drain(b)
		if b.State() != Discharging {
			t.Fatalf("state = %v, want Discharging", b.State())
		}
	})

	t.Run("FullyDischarged", func(t *testing.T) {
		b := New(p)
		for b.State() != FullyDischarged {
			b.Discharge(p.MaxDischarge, time.Hour)
		}
		if got := drain(b); got != 0 {
			t.Fatalf("empty battery delivered %v", got)
		}
		if b.State() != FullyDischarged {
			t.Fatalf("state = %v, want FullyDischarged", b.State())
		}
		if b.SOC() != 0 {
			t.Fatalf("SOC = %v, want 0", b.SOC())
		}
	})
}

func TestBBUStartChargeWhenFullHoldsNoSetpoint(t *testing.T) {
	b := New(DefaultParams())
	b.StartCharge(5 * units.Ampere)
	if b.State() != FullyCharged || b.Setpoint() != 0 {
		t.Fatalf("full battery: state %v setpoint %v, want FullyCharged/0", b.State(), b.Setpoint())
	}
	// SetChargeCurrent outside Charging must not plant a setpoint either.
	b.SetChargeCurrent(3 * units.Ampere)
	if b.Setpoint() != 0 {
		t.Fatalf("SetChargeCurrent while FullyCharged set %v", b.Setpoint())
	}
}

func TestBBUChargeAfterInterruptResumesFromTrueSOC(t *testing.T) {
	p := DefaultParams()
	b := New(p)
	b.Discharge(p.MaxDischarge, 30*time.Minute)
	b.StartCharge(2 * units.Ampere)
	for i := 0; i < 10; i++ {
		b.StepCharge(time.Minute)
	}
	mid := b.SOC()
	b.Discharge(200*units.Watt, 5*time.Minute) // second outage mid-charge
	if b.SOC() >= mid {
		t.Fatalf("SOC did not fall across the second outage")
	}
	b.StartCharge(2 * units.Ampere)
	if b.State() != Charging {
		t.Fatalf("state = %v, want Charging", b.State())
	}
	for b.State() == Charging {
		b.StepCharge(time.Minute)
	}
	if b.State() != FullyCharged || b.SOC() != 1 || b.Setpoint() != 0 {
		t.Fatalf("after recharge: state %v soc %v setpoint %v", b.State(), b.SOC(), b.Setpoint())
	}
}

// RackPack interrupt semantics: Suspend must freeze the charge-owed deficit
// exactly, Discharge must add to it, and a resumed charge must pick up from
// the true depth of discharge rather than restarting open-loop.

func TestRackPackSuspendPreservesDeficit(t *testing.T) {
	rp := NewRackPack(Fig5Surface())
	rp.StartCharge(2*units.Ampere, 0.6)
	for i := 0; i < 20; i++ {
		rp.Step(time.Minute)
	}
	dod := rp.DOD()
	if dod <= 0 || dod >= 0.6 {
		t.Fatalf("mid-charge DOD = %v, want in (0, 0.6)", dod)
	}
	rp.Suspend()
	if rp.Charging() {
		t.Fatal("still charging after Suspend")
	}
	if got := rp.DOD(); got != dod {
		t.Fatalf("DOD changed across Suspend: %v != %v", got, dod)
	}
	// Suspend while idle is a no-op.
	rp.Suspend()
	if got := rp.DOD(); got != dod {
		t.Fatalf("DOD changed across idle Suspend: %v != %v", got, dod)
	}
	rp.StartCharge(2*units.Ampere, rp.DOD())
	if !rp.Charging() || rp.DOD() != dod {
		t.Fatalf("resume: charging %v DOD %v, want true/%v", rp.Charging(), rp.DOD(), dod)
	}
}

func TestRackPackDischargeWhileChargingInterrupts(t *testing.T) {
	rp := NewRackPack(Fig5Surface())
	rp.StartCharge(3*units.Ampere, 0.5)
	got := rp.Discharge(6300*units.Watt, time.Minute)
	if rp.Charging() {
		t.Fatal("still charging after Discharge")
	}
	want := units.EnergyOver(6300*units.Watt, time.Minute)
	if got != want {
		t.Fatalf("delivered %v, want %v", got, want)
	}
	wantDOD := 0.5 + float64(want)/RackFullEnergy
	if math.Abs(float64(rp.DOD())-wantDOD) > 1e-9 {
		t.Fatalf("DOD = %v, want %v", rp.DOD(), wantDOD)
	}
}

func TestRackPackDepletion(t *testing.T) {
	rp := NewRackPack(Fig5Surface())
	// Drain past the full capacity; delivery truncates at empty.
	total := units.Energy(0)
	for i := 0; i < 200 && !rp.Depleted(); i++ {
		total += rp.Discharge(6300*units.Watt, 2*time.Minute)
	}
	if !rp.Depleted() {
		t.Fatal("pack never depleted")
	}
	if math.Abs(float64(total)-RackFullEnergy) > 1e-6 {
		t.Fatalf("delivered %v over the full drain, want %v", total, RackFullEnergy)
	}
	if rp.DOD() != 1 {
		t.Fatalf("DOD = %v at depletion, want 1", rp.DOD())
	}
	if got := rp.Discharge(6300*units.Watt, time.Minute); got != 0 {
		t.Fatalf("depleted pack delivered %v", got)
	}
	// A depleted pack recharges from DOD 1 and completion clears the deficit.
	rp.StartCharge(5*units.Ampere, rp.DOD())
	if rp.Depleted() {
		t.Fatal("Depleted while charging")
	}
	for rp.Charging() {
		rp.Step(time.Minute)
	}
	if rp.DOD() != 0 || rp.SOC() != 1 {
		t.Fatalf("after full recharge: DOD %v SOC %v", rp.DOD(), rp.SOC())
	}
}
