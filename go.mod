module coordcharge

go 1.22
