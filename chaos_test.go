package coordcharge

import (
	"fmt"
	"testing"
	"time"

	"coordcharge/internal/battery"
	"coordcharge/internal/charger"
	"coordcharge/internal/core"
	"coordcharge/internal/dynamo"
	"coordcharge/internal/faults"
	"coordcharge/internal/power"
	"coordcharge/internal/rack"
	"coordcharge/internal/rng"
	"coordcharge/internal/units"
)

// pendingTransition is one in-flight open transition in the chaos loop.
type pendingTransition struct {
	node      *power.Node
	restoreAt time.Duration
}

// related reports whether one node is an ancestor of the other (same subtree):
// overlapping transitions are only injected into disjoint subtrees, as two
// nested de-energizations are not a scenario the hardware can produce.
func related(a, b *power.Node) bool {
	for p := a; p != nil; p = p.Parent() {
		if p == b {
			return true
		}
	}
	for p := b; p != nil; p = p.Parent() {
		if p == a {
			return true
		}
	}
	return false
}

// checkAggregation verifies invariant 2 at every interior node: the power a
// breaker reports equals the sum of its children and directly attached loads.
func checkAggregation(t *testing.T, now time.Duration, nodes []*power.Node) {
	t.Helper()
	for _, n := range nodes {
		if len(n.Children()) == 0 && len(n.Loads()) == 0 {
			continue
		}
		var sum units.Power
		for _, c := range n.Children() {
			sum += c.Power()
		}
		for _, l := range n.Loads() {
			sum += l.Power()
		}
		if n.Tripped() {
			sum = 0
		}
		if d := float64(n.Power() - sum); d > 1 || d < -1 {
			t.Fatalf("t=%v: node %s power %v != parts sum %v", now, n.Name(), n.Power(), sum)
		}
	}
}

// Chaos: random open transitions and outages at random hierarchy levels —
// including overlapping transitions in disjoint subtrees — random load drift,
// random topologies, and the fault injector running at its default rates
// (lossy telemetry and commands, crashing agents and controllers). Under the
// coordinated control plane the safety invariants must hold throughout:
//
//  1. no breaker ever trips;
//  2. parent power equals the sum of its parts at every interior node, every
//     tick;
//  3. every charge eventually completes (no rack charges forever);
//  4. caps are released once headroom returns.
func TestChaosInvariants(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			src := rng.New(seed)
			nRacks := 12 + src.Intn(24)
			racks := make([]*rack.Rack, nRacks)
			loads := make([]power.Load, nRacks)
			for i := range racks {
				racks[i] = rack.New(fmt.Sprintf("c%02d", i), rack.Priority(1+src.Intn(3)),
					charger.Variable{}, battery.Fig5Surface())
				loads[i] = racks[i]
			}
			msb, err := power.Build(power.Spec{
				Name:        "chaos",
				RacksPerRPP: 3 + src.Intn(6),
				MSBLimit:    units.Power(float64(nRacks) * src.Uniform(7000, 9500)),
			}, loads)
			if err != nil {
				t.Fatal(err)
			}
			fcfg := faults.Default()
			fcfg.Seed = seed
			hier, err := dynamo.BuildHierarchyOpts(msb, dynamo.ModePriorityAware, core.DefaultConfig(), dynamo.HierarchyOptions{
				Injector:    faults.New(fcfg),
				StaleAfter:  10 * time.Second,
				Retry:       dynamo.DefaultRetryPolicy(),
				WatchdogTTL: 30 * time.Second,
			})
			if err != nil {
				t.Fatal(err)
			}
			var nodes []*power.Node
			var rpps []*power.Node
			msb.Walk(func(n *power.Node) {
				nodes = append(nodes, n)
				if n.Level() == power.LevelRPP {
					rpps = append(rpps, n)
				}
			})

			const step = 3 * time.Second
			horizon := 4 * time.Hour
			var pending []pendingTransition
			forcedOverlap := len(rpps) < 2 // already done if impossible
			for now := step; now <= horizon; now += step {
				// Random load drift.
				if src.Intn(10) == 0 {
					for _, r := range racks {
						r.SetDemand(units.Power(src.Uniform(3000, 9500)))
					}
				}
				// Deterministic overlapping transitions: two disjoint RPP
				// subtrees de-energized together, restored 45 s apart.
				if !forcedOverlap && now >= 20*time.Minute && len(pending) == 0 {
					forcedOverlap = true
					rpps[0].Deenergize(now)
					rpps[1].Deenergize(now)
					pending = append(pending,
						pendingTransition{rpps[0], now + 45*time.Second},
						pendingTransition{rpps[1], now + 90*time.Second})
				}
				// Random transition injection, up to two concurrent in
				// disjoint subtrees. Leave room for the slowest possible
				// charge (1 A from full discharge: ~142 min) before the
				// horizon check.
				if len(pending) < 2 && src.Intn(400) == 0 && now < horizon-170*time.Minute {
					cand := nodes[src.Intn(len(nodes))]
					ok := true
					for _, p := range pending {
						if related(cand, p.node) {
							ok = false
						}
					}
					if ok {
						cand.Deenergize(now)
						pending = append(pending, pendingTransition{cand, now + time.Duration(src.Uniform(3, 120))*time.Second})
					}
				}
				kept := pending[:0]
				for _, p := range pending {
					if now >= p.restoreAt {
						p.node.Reenergize(now)
					} else {
						kept = append(kept, p)
					}
				}
				pending = kept
				for _, r := range racks {
					r.Step(now, step)
				}
				hier.Tick(now)

				// Invariant 1: no trips.
				for _, n := range nodes {
					if n.Tripped() {
						t.Fatalf("t=%v: breaker %s tripped", now, n.Name())
					}
				}
				// Invariant 2: aggregation consistency at every interior node.
				checkAggregation(t, now, nodes)
			}
			// Invariant 3: nothing charges forever (horizon is generous).
			for _, r := range racks {
				if r.Charging() {
					t.Errorf("rack %s still charging at the 4 h horizon", r.Name())
				}
			}
			// Invariant 4: with demand dropped to near zero, caps lift. The
			// window rides out controller crash/repair cycles (MTTR 8 s) so a
			// restarted controller has ticked with headroom present.
			for _, r := range racks {
				r.SetDemand(1000 * units.Watt)
			}
			for k := 1; k <= 30; k++ {
				now := horizon + time.Duration(k)*step
				for _, r := range racks {
					r.Step(now, step)
				}
				hier.Tick(now)
			}
			for _, r := range racks {
				if r.CappedPower() != 0 {
					t.Errorf("rack %s still capped after load collapse", r.Name())
				}
			}
		})
	}
}

// The fail-safe guarantee: with the command path completely dead — no
// override, heartbeat, or retransmission ever delivered — the rack-local
// watchdogs alone must keep every breaker inside its trip curve for the whole
// chaos horizon. The arithmetic making this a guarantee rather than luck:
// watchdog TTL (20 s) plus one step (3 s) is under the breakers' 30 s
// trip-sustain window, so an uncontrolled charge is demoted to the safe 1 A
// current before any overdraw it causes can trip, and once demoted the worst
// case draw (9.3 kW demand + 380 W recharge per rack) sits inside 1.3× the
// 8 kW/rack MSB limit.
func TestFailSafeUnderTotalCommandLoss(t *testing.T) {
	for seed := int64(0); seed < 2; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			src := rng.New(seed)
			nRacks := 12 + src.Intn(12)
			racks := make([]*rack.Rack, nRacks)
			loads := make([]power.Load, nRacks)
			for i := range racks {
				racks[i] = rack.New(fmt.Sprintf("f%02d", i), rack.Priority(1+src.Intn(3)),
					charger.Variable{}, battery.Fig5Surface())
				loads[i] = racks[i]
			}
			msb, err := power.Build(power.Spec{
				Name:        "failsafe",
				RacksPerRPP: 3 + src.Intn(4),
				MSBLimit:    units.Power(float64(nRacks) * 8000),
			}, loads)
			if err != nil {
				t.Fatal(err)
			}
			hier, err := dynamo.BuildHierarchyOpts(msb, dynamo.ModePriorityAware, core.DefaultConfig(), dynamo.HierarchyOptions{
				Injector:    faults.New(faults.Config{Seed: seed, CommandLoss: 1, TelemetryLoss: 0.25}),
				StaleAfter:  10 * time.Second,
				Retry:       dynamo.DefaultRetryPolicy(),
				WatchdogTTL: 20 * time.Second,
			})
			if err != nil {
				t.Fatal(err)
			}
			var nodes []*power.Node
			msb.Walk(func(n *power.Node) { nodes = append(nodes, n) })

			const step = 3 * time.Second
			horizon := 4 * time.Hour
			var pendingRestore *power.Node
			var restoreAt time.Duration
			for now := step; now <= horizon; now += step {
				if src.Intn(10) == 0 {
					for _, r := range racks {
						r.SetDemand(units.Power(src.Uniform(3000, 9300)))
					}
				}
				if pendingRestore == nil && src.Intn(300) == 0 && now < horizon-170*time.Minute {
					pendingRestore = nodes[src.Intn(len(nodes))]
					pendingRestore.Deenergize(now)
					restoreAt = now + time.Duration(src.Uniform(3, 120))*time.Second
				}
				if pendingRestore != nil && now >= restoreAt {
					pendingRestore.Reenergize(now)
					pendingRestore = nil
				}
				for _, r := range racks {
					r.Step(now, step)
				}
				hier.Tick(now)
				for _, n := range nodes {
					if n.Tripped() {
						t.Fatalf("t=%v: breaker %s tripped despite the watchdogs", now, n.Name())
					}
				}
			}
			var fired int
			for _, r := range racks {
				fired += r.FailSafeActivations()
				if r.Charging() {
					t.Errorf("rack %s still charging at the 4 h horizon", r.Name())
				}
			}
			if fired == 0 {
				t.Error("no watchdog ever fired: the scenario did not exercise degraded charging")
			}
		})
	}
}
