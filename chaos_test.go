package coordcharge

import (
	"fmt"
	"testing"
	"time"

	"coordcharge/internal/battery"
	"coordcharge/internal/charger"
	"coordcharge/internal/core"
	"coordcharge/internal/dynamo"
	"coordcharge/internal/power"
	"coordcharge/internal/rack"
	"coordcharge/internal/rng"
	"coordcharge/internal/units"
)

// Chaos: random open transitions and outages at random hierarchy levels,
// random load drift, random topologies — under the coordinated control
// plane, the safety invariants must hold throughout:
//
//  1. no breaker ever trips;
//  2. parent power equals the sum of its parts at every node, every tick;
//  3. every charge eventually completes (no rack charges forever);
//  4. caps are released once headroom returns.
func TestChaosInvariants(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			src := rng.New(seed)
			nRacks := 12 + src.Intn(24)
			racks := make([]*rack.Rack, nRacks)
			loads := make([]power.Load, nRacks)
			for i := range racks {
				racks[i] = rack.New(fmt.Sprintf("c%02d", i), rack.Priority(1+src.Intn(3)),
					charger.Variable{}, battery.Fig5Surface())
				loads[i] = racks[i]
			}
			msb, err := power.Build(power.Spec{
				Name:        "chaos",
				RacksPerRPP: 3 + src.Intn(6),
				MSBLimit:    units.Power(float64(nRacks) * src.Uniform(7000, 9500)),
			}, loads)
			if err != nil {
				t.Fatal(err)
			}
			hier, err := dynamo.BuildHierarchy(msb, dynamo.ModePriorityAware, core.DefaultConfig(), nil, 0)
			if err != nil {
				t.Fatal(err)
			}
			var nodes []*power.Node
			msb.Walk(func(n *power.Node) { nodes = append(nodes, n) })

			const step = 3 * time.Second
			horizon := 4 * time.Hour
			var pendingRestore *power.Node
			var restoreAt time.Duration
			for now := step; now <= horizon; now += step {
				// Random load drift.
				if src.Intn(10) == 0 {
					for _, r := range racks {
						r.SetDemand(units.Power(src.Uniform(3000, 9500)))
					}
				}
				// Random transition injection (one at a time).
				// Leave room for the slowest possible charge (1 A from full
				// discharge: ~142 min) before the horizon check.
				if pendingRestore == nil && src.Intn(400) == 0 && now < horizon-170*time.Minute {
					pendingRestore = nodes[src.Intn(len(nodes))]
					pendingRestore.Deenergize(now)
					restoreAt = now + time.Duration(src.Uniform(3, 120))*time.Second
				}
				if pendingRestore != nil && now >= restoreAt {
					pendingRestore.Reenergize(now)
					pendingRestore = nil
				}
				for _, r := range racks {
					r.Step(now, step)
				}
				hier.Tick(now)

				// Invariant 1: no trips.
				for _, n := range nodes {
					if n.Tripped() {
						t.Fatalf("t=%v: breaker %s tripped", now, n.Name())
					}
				}
				// Invariant 2: aggregation consistency (spot-check the root).
				var sum units.Power
				for _, c := range msb.Children() {
					sum += c.Power()
				}
				if d := float64(msb.Power() - sum); d > 1 || d < -1 {
					t.Fatalf("t=%v: root power %v != children sum %v", now, msb.Power(), sum)
				}
			}
			// Invariant 3: nothing charges forever (horizon is generous).
			for _, r := range racks {
				if r.Charging() {
					t.Errorf("rack %s still charging at the 4 h horizon", r.Name())
				}
			}
			// Invariant 4: with demand dropped to near zero, caps lift.
			for _, r := range racks {
				r.SetDemand(1000 * units.Watt)
			}
			for k := 1; k <= 3; k++ {
				now := horizon + time.Duration(k)*step
				for _, r := range racks {
					r.Step(now, step)
				}
				hier.Tick(now)
			}
			for _, r := range racks {
				if r.CappedPower() != 0 {
					t.Errorf("rack %s still capped after load collapse", r.Name())
				}
			}
		})
	}
}
