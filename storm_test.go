package coordcharge

import (
	"fmt"
	"testing"
	"time"

	"coordcharge/internal/dynamo"
	"coordcharge/internal/faults"
	"coordcharge/internal/power"
	"coordcharge/internal/rack"
	"coordcharge/internal/scenario"
	"coordcharge/internal/storm"
	"coordcharge/internal/units"
)

// Recharge-storm acceptance: a site-wide 90 s utility outage at peak load
// drains every BBU at once, and the synchronized recharge that follows is the
// paper's §I trip hazard. With storm admission armed the fleet must recover
// with zero breaker trips and zero IT load lost to the guard; without it, the
// same scenario must demonstrably trip the breaker (or force the guard to
// act) — proving the hazard the admission layer removes is real.

// stormSpec is the shared scenario: 30 racks, a breaker limit close to the
// IT peak, and a hair-trigger 5 %/30 s protection curve that makes the trip
// hazard reachable at realistic rack loads.
func stormSpec(seed int64) scenario.CoordSpec {
	return scenario.CoordSpec{
		NumP1: 10, NumP2: 10, NumP3: 10,
		Seed:              seed,
		MSBLimit:          205 * units.Kilowatt,
		Mode:              dynamo.ModePriorityAware,
		OutageLen:         90 * time.Second,
		TripRule:          &power.TripRule{Fraction: 0.05, Sustain: 30 * time.Second},
		MaxChargeDuration: 6 * time.Hour,
	}
}

// armStorm arms admission control and the guard the way `coordsim -storm
// -admission -guard` does, with a reserve small enough for the tight limit.
func armStorm(spec *scenario.CoordSpec) {
	sc := storm.Default()
	sc.Reserve = 0.01
	spec.Storm = &sc
	g := storm.DefaultGuardConfig()
	spec.Guard = &g
}

func meanDuration(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range ds {
		sum += d
	}
	return sum / time.Duration(len(ds))
}

func TestStormSurvivalWithAdmission(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			spec := stormSpec(seed)
			armStorm(&spec)
			res, err := scenario.RunCoordinated(spec)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Tripped) != 0 {
				t.Fatalf("breakers tripped with admission on: %v", res.Tripped)
			}
			if res.Guard.ITCapped != 0 || res.Guard.MaxITCut != 0 {
				t.Fatalf("guard capped IT load (%d racks, %v max cut); a contained storm sheds charge only",
					res.Guard.ITCapped, res.Guard.MaxITCut)
			}
			if res.LastChargeDone == 0 {
				t.Fatal("recharges still outstanding at the horizon; the admission queue must drain")
			}
			if res.Storm.Storms == 0 || res.Storm.Admitted < spec.NumP1+spec.NumP2+spec.NumP3 {
				t.Fatalf("storm metrics = %+v, want every rack admitted through the queue", res.Storm)
			}
			for _, p := range []rack.Priority{rack.P1, rack.P2, rack.P3} {
				if got := len(res.ChargeDurations[p]); got != res.Racks[p] {
					t.Fatalf("%v: only %d/%d racks completed their recharge", p, got, res.Racks[p])
				}
			}
			p1 := meanDuration(res.ChargeDurations[rack.P1])
			p2 := meanDuration(res.ChargeDurations[rack.P2])
			p3 := meanDuration(res.ChargeDurations[rack.P3])
			if !(p1 < p2 && p2 < p3) {
				t.Fatalf("completion means not priority-ordered: P1 %v, P2 %v, P3 %v", p1, p2, p3)
			}
		})
	}
}

// The distributed control plane must pass the same bar: admission decisions
// travel over the message bus (pause/resume directives through the leaves)
// rather than direct controller calls.
func TestStormSurvivalWithAdmissionDistributed(t *testing.T) {
	for seed := int64(1); seed <= 2; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			spec := stormSpec(seed)
			armStorm(&spec)
			spec.Distributed = true
			res, err := scenario.RunCoordinated(spec)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Tripped) != 0 {
				t.Fatalf("breakers tripped with admission on: %v", res.Tripped)
			}
			if res.Guard.ITCapped != 0 || res.Guard.MaxITCut != 0 {
				t.Fatalf("guard capped IT load (%d racks, %v max cut)", res.Guard.ITCapped, res.Guard.MaxITCut)
			}
			if res.LastChargeDone == 0 {
				t.Fatal("recharges still outstanding at the horizon")
			}
			if res.Storm.Storms == 0 {
				t.Fatalf("storm metrics = %+v, want a detected storm", res.Storm)
			}
		})
	}
}

// Control arm: with admission off and the coordinating controllers crashed
// (the planner cannot throttle the synchronized restart), the guard is the
// last line — it must act, and acting must keep the breaker closed.
func TestStormGuardActsWhenAdmissionOff(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			spec := stormSpec(seed)
			g := storm.DefaultGuardConfig()
			spec.Guard = &g
			spec.Faults = faults.Config{
				Seed:           seed,
				ControllerMTBF: time.Millisecond,
				ControllerMTTR: 1000 * time.Hour,
			}
			res, err := scenario.RunCoordinated(spec)
			if err != nil {
				t.Fatal(err)
			}
			if res.Guard.Fires == 0 {
				t.Fatalf("guard never fired with the planner down (guard = %+v)", res.Guard)
			}
			if len(res.Tripped) != 0 {
				t.Fatalf("guard fired but breakers still tripped: %v", res.Tripped)
			}
		})
	}
}

// Control arm: with neither admission nor the guard, the same storm trips the
// breaker — the hazard is real, not an artifact of the tightened rule.
func TestStormTripsWithoutProtection(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			spec := stormSpec(seed)
			spec.Faults = faults.Config{
				Seed:           seed,
				ControllerMTBF: time.Millisecond,
				ControllerMTTR: 1000 * time.Hour,
			}
			res, err := scenario.RunCoordinated(spec)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Tripped) == 0 {
				t.Fatal("storm did not trip any breaker with all protection off")
			}
		})
	}
}
