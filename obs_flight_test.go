package coordcharge

import (
	"bufio"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"coordcharge/internal/battery"
	"coordcharge/internal/charger"
	"coordcharge/internal/core"
	"coordcharge/internal/dynamo"
	"coordcharge/internal/obs"
	"coordcharge/internal/power"
	"coordcharge/internal/rack"
	"coordcharge/internal/scenario"
	"coordcharge/internal/storm"
	"coordcharge/internal/units"
)

// Observability acceptance. Three properties matter: the HTTP surface is
// consistent with the run it watches (a scraper mid-storm sees the same fleet
// the final summary reports), the flight recorder is deterministic per seed
// on both control planes (the digest is the nondeterminism tripwire), and a
// guard incident can be reconstructed as a cause chain from events alone.

func getJSON(t *testing.T, url string, into any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
}

// TestObsEndpointsLiveDuringStorm runs the storm scenario with the HTTP
// surface attached, scrapes /metrics from a StepHook while the admission
// queue is non-empty (i.e. mid-storm), and cross-checks both the mid-run
// scrape and the final scrape against the simulation's own summary.
func TestObsEndpointsLiveDuringStorm(t *testing.T) {
	spec := stormSpec(1)
	armStorm(&spec)
	sink := obs.NewSink(obs.DefaultFlightCap)
	spec.Obs = sink
	srv := httptest.NewServer(obs.Handler(sink, func() map[string]any {
		return map[string]any{"scenario": "storm"}
	}))
	defer srv.Close()

	depth := sink.Gauge("storm.queue_depth")
	var mid obs.Snapshot
	scraped := false
	spec.StepHook = func(now time.Duration) {
		if scraped || depth.Value() <= 0 {
			return
		}
		getJSON(t, srv.URL+"/metrics", &mid)
		scraped = true
	}

	res, err := scenario.RunCoordinated(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !scraped {
		t.Fatal("the admission queue never held a rack; no mid-storm scrape happened")
	}

	// Mid-storm scrape: the fleet gauges a storm operator needs must exist
	// and describe a consistent power balance.
	if mid.Gauges["storm.queue_depth"] <= 0 {
		t.Fatalf("mid-storm queue depth = %v, want > 0", mid.Gauges["storm.queue_depth"])
	}
	for _, k := range []string{"msb.power_w", "msb.limit_w", "msb.headroom_w",
		"charge.charging.p1", "charge.completed.p1", "charge.completed.p2", "charge.completed.p3"} {
		if _, ok := mid.Gauges[k]; !ok {
			t.Fatalf("mid-storm /metrics missing gauge %q", k)
		}
	}
	if got, want := mid.Gauges["msb.headroom_w"], mid.Gauges["msb.limit_w"]-mid.Gauges["msb.power_w"]; got != want {
		t.Fatalf("mid-storm headroom %v != limit-power %v", got, want)
	}
	if mid.Counters["storm.storms"] < 1 {
		t.Fatalf("mid-storm storm.storms = %d, want >= 1", mid.Counters["storm.storms"])
	}

	// Final scrape: the live surface must agree with the run's summary.
	var fin obs.Snapshot
	getJSON(t, srv.URL+"/metrics", &fin)
	for i, p := range []rack.Priority{rack.P1, rack.P2, rack.P3} {
		key := fmt.Sprintf("charge.completed.p%d", i+1)
		if got, want := int(fin.Gauges[key]), len(res.ChargeDurations[p]); got != want {
			t.Errorf("%s = %d, want %d completed racks", key, got, want)
		}
	}
	wantCounters := map[string]int64{
		"storm.storms":     int64(res.Storm.Storms),
		"storm.enqueued":   int64(res.Storm.Enqueued),
		"storm.admitted":   int64(res.Storm.Admitted),
		"storm.waves":      int64(res.Storm.Waves),
		"storm.promotions": int64(res.Storm.Promotions),
		"guard.fires":      int64(res.Guard.Fires),
		"guard.demoted":    int64(res.Guard.Demoted),
		"guard.paused":     int64(res.Guard.Paused),
		"guard.it_capped":  int64(res.Guard.ITCapped),
		"guard.resumed":    int64(res.Guard.Resumed),
	}
	for k, want := range wantCounters {
		if got := fin.Counters[k]; got != want {
			t.Errorf("final %s = %d, want %d (the summary's value)", k, got, want)
		}
	}
	if got, want := fin.Gauges["msb.headroom_w"], fin.Gauges["msb.limit_w"]-fin.Gauges["msb.power_w"]; got != want {
		t.Errorf("final headroom %v != limit-power %v", got, want)
	}

	// The debug surface: health, a non-empty flight recorder, and a digest.
	var health map[string]any
	getJSON(t, srv.URL+"/healthz", &health)
	if health["status"] != "ok" || health["scenario"] != "storm" {
		t.Errorf("healthz = %v, want status ok with scenario field", health)
	}
	resp, err := http.Get(srv.URL + "/debug/flight?n=64")
	if err != nil {
		t.Fatal(err)
	}
	lines := 0
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var e obs.Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("flight line %d: %v", lines, err)
		}
		lines++
	}
	resp.Body.Close()
	if lines == 0 {
		t.Error("/debug/flight returned no events after a storm run")
	}
	var dig struct {
		Digest string `json:"digest"`
		Total  uint64 `json:"total"`
	}
	getJSON(t, srv.URL+"/debug/flight/digest", &dig)
	if dig.Digest == "" || dig.Total == 0 {
		t.Errorf("digest = %+v, want non-empty digest over > 0 events", dig)
	}
}

// TestObsFlightDigestDeterminism replays the same seed and spec twice on each
// control plane and demands byte-identical flight-recorder digests: any
// wall-clock, map-order, or scheduling leak into the control path shows up
// here first.
func TestObsFlightDigestDeterminism(t *testing.T) {
	for _, distributed := range []bool{false, true} {
		name := "sync"
		if distributed {
			name = "distributed"
		}
		t.Run(name, func(t *testing.T) {
			run := func() (string, uint64) {
				spec := stormSpec(3)
				armStorm(&spec)
				spec.Distributed = distributed
				sink := obs.NewSink(obs.DefaultFlightCap)
				spec.Obs = sink
				if _, err := scenario.RunCoordinated(spec); err != nil {
					t.Fatal(err)
				}
				return sink.Flight.Digest(), sink.Flight.Total()
			}
			d1, n1 := run()
			d2, n2 := run()
			if n1 == 0 {
				t.Fatal("flight recorder captured no events")
			}
			if d1 != d2 || n1 != n2 {
				t.Fatalf("same seed, different flight recordings: %s (%d events) vs %s (%d events)",
					d1, n1, d2, n2)
			}
		})
	}
}

// causeChainRack mirrors the rack population of the dynamo storm tests: named
// so priority classes cannot be inverted by name tie-breaks, with seed-varied
// IT demand.
func causeChainRack(i int, p rack.Priority, rng *rand.Rand) *rack.Rack {
	r := rack.New(fmt.Sprintf("p%d-%02d", p, i), p, charger.Variable{}, battery.Fig5Surface())
	r.SetDemand(units.Power(4000 + rng.Intn(2001)))
	return r
}

// runGuardIncident drains a small fleet, crashes the planning controller, and
// restores input so the synchronized recharge overdraws a tight breaker with
// nobody coordinating: the guard must contain it alone. The controller then
// restarts and the admission queue re-admits what the guard paused. Returns
// the sink after the fleet has fully recovered.
func runGuardIncident(t *testing.T, seed int64) *obs.Sink {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	rpp := power.NewNode("rpp", power.LevelRPP, power.DefaultRPPLimit)
	prios := []rack.Priority{rack.P1, rack.P1, rack.P2, rack.P2, rack.P2, rack.P3, rack.P3, rack.P3}
	racks := make([]*rack.Rack, len(prios))
	var it units.Power
	for i, p := range prios {
		racks[i] = causeChainRack(i, p, rng)
		it += racks[i].Demand()
		rpp.AttachLoad(racks[i])
	}
	const step = 5 * time.Second
	for _, r := range racks {
		r.LoseInput(0)
	}
	var restoreAt time.Duration
	for now := step; ; now += step {
		done := true
		for _, r := range racks {
			r.Step(now, step)
			if !r.Depleted() {
				done = false
			}
		}
		if done {
			restoreAt = now
			break
		}
		if now > time.Hour {
			t.Fatal("packs never depleted")
		}
	}
	for _, r := range racks {
		r.RestoreInput(restoreAt)
	}
	rpp.SetLimit(it + 2*units.Kilowatt)
	rpp.SetTripRule(power.TripRule{Fraction: 0.05, Sustain: 30 * time.Second})

	sink := obs.NewSink(obs.DefaultFlightCap)
	sc := storm.Default()
	sc.Reserve = 0.01
	gc := storm.DefaultGuardConfig()
	h, err := dynamo.BuildHierarchyOpts(rpp, dynamo.ModePriorityAware, core.DefaultConfig(),
		dynamo.HierarchyOptions{Storm: &sc, Guard: &gc, Obs: sink})
	if err != nil {
		t.Fatal(err)
	}
	ctl := h.Controller(rpp)
	ctl.Crash()

	// Phase 1: two unmanaged minutes. The synchronized restart breaches the
	// limit and the guard — ticking without its controller — must shed.
	now := restoreAt
	for ; now <= restoreAt+2*time.Minute; now += step {
		for _, r := range racks {
			r.Step(now, step)
		}
		h.Tick(now)
		if rpp.Tripped() {
			t.Fatalf("breaker tripped at %v with the guard armed", now)
		}
	}
	gm := h.TotalGuardMetrics()
	if gm.Fires == 0 || gm.Demoted == 0 || gm.Paused == 0 {
		t.Fatalf("guard metrics after unmanaged phase = %+v, want fires, demotions, and pauses", gm)
	}

	// Phase 2: the controller returns and drains the queue the guard filled.
	ctl.Restart(now)
	for ; now <= restoreAt+8*time.Hour; now += step {
		for _, r := range racks {
			r.Step(now, step)
		}
		h.Tick(now)
		if rpp.Tripped() {
			t.Fatalf("breaker tripped at %v after controller restart", now)
		}
		recovered := true
		for _, r := range racks {
			if r.Charging() || r.PendingDOD() > 0 || r.BatteryDOD() > 0 {
				recovered = false
				break
			}
		}
		if recovered {
			return sink
		}
	}
	t.Fatal("fleet never recovered within the horizon")
	return nil
}

// TestObsGuardCauseChain reconstructs the incident from flight-recorder
// events alone — breach, guard-fire, demote, guard-pause, enqueue, admit, in
// causal (sequence) order for a single shed rack — and demands the same seed
// reproduce the recording bit for bit.
func TestObsGuardCauseChain(t *testing.T) {
	sink := runGuardIncident(t, 1)
	events := sink.Flight.Last(int(sink.Flight.Total()))
	if sink.Flight.Dropped() > 0 {
		// The ring is larger than this incident; dropping events would break
		// reconstruction below.
		t.Fatalf("flight recorder dropped %d events", sink.Flight.Dropped())
	}

	// Index the first occurrence of each step, keyed by the paused rack.
	firstSeq := func(comp, kind, rackName string) (uint64, bool) {
		for _, e := range events {
			if e.Comp == comp && e.Kind == kind && (rackName == "" || e.Attr["rack"] == rackName) {
				return e.Seq, true
			}
		}
		return 0, false
	}
	var paused string
	for _, e := range events {
		if e.Comp == "guard/rpp" && e.Kind == "guard-pause" {
			paused = e.Attr["rack"]
			break
		}
	}
	if paused == "" {
		t.Fatal("no guard-pause event recorded")
	}
	breach, ok1 := firstSeq("guard/rpp", "breach", "")
	fire, ok2 := firstSeq("guard/rpp", "guard-fire", "")
	demote, ok3 := firstSeq("guard/rpp", "demote", "")
	pause, ok4 := firstSeq("guard/rpp", "guard-pause", paused)
	enq, ok5 := firstSeq("storm/queue", "enqueue", paused)
	admit, ok6 := firstSeq("storm/queue", "admit", paused)
	for i, ok := range []bool{ok1, ok2, ok3, ok4, ok5, ok6} {
		if !ok {
			t.Fatalf("cause-chain step %d missing from the flight recorder (paused rack %s)", i, paused)
		}
	}
	if !(breach < fire && fire <= demote && demote < pause && pause < enq && enq < admit) {
		t.Fatalf("cause chain out of order: breach=%d fire=%d demote=%d pause=%d enqueue=%d admit=%d",
			breach, fire, demote, pause, enq, admit)
	}

	// Same seed, same incident, same bits.
	again := runGuardIncident(t, 1)
	if d1, d2 := sink.Flight.Digest(), again.Flight.Digest(); d1 != d2 {
		t.Fatalf("same seed, different incident recordings: %s vs %s", d1, d2)
	}
}
