// Distributed: the control plane as it is actually deployed — agents on TOR
// switches and controllers as separate processes exchanging messages over
// the network (paper §IV-B). An MSB-level controller aggregates power
// exclusively through two leaf controllers; when an open transition hits
// both rows, the MSB controller discovers the charging sequence through the
// polling chain (agent → leaf → upper), plans Algorithm 1 at the root, and
// its overrides propagate back down the same path.
//
// Run with:
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"time"

	"coordcharge"
)

func main() {
	engine := coordcharge.NewEngine()
	busFabric := coordcharge.NewBus(engine, coordcharge.ConstantLatency(25*time.Millisecond))

	msb := coordcharge.NewNode("msb", coordcharge.LevelMSB, 200*coordcharge.Kilowatt)
	var racks []*coordcharge.Rack
	var leaves []*coordcharge.AsyncLeaf
	cfg := coordcharge.DefaultPlannerConfig()
	for li := 0; li < 2; li++ {
		rpp := msb.AddChild(coordcharge.NewNode(fmt.Sprintf("rpp%d", li), coordcharge.LevelRPP, coordcharge.DefaultRPPLimit))
		var rowRacks []*coordcharge.Rack
		for i := 0; i < 4; i++ {
			r := coordcharge.NewRack(fmt.Sprintf("row%d-rack%d", li, i),
				coordcharge.Priority(1+i%3), coordcharge.VariableCharger{}, coordcharge.Fig5Surface())
			r.SetDemand(9 * coordcharge.Kilowatt)
			rpp.AttachLoad(r)
			coordcharge.NewAsyncAgent(busFabric, engine, r, 0)
			rowRacks = append(rowRacks, r)
			racks = append(racks, r)
		}
		// Leaves monitor and execute; planning happens at the MSB root.
		leaves = append(leaves, coordcharge.NewAsyncLeaf(busFabric, engine, rpp, rowRacks,
			coordcharge.ModePriorityAware, cfg, false, 3*time.Second))
	}
	upper := coordcharge.NewAsyncUpper(busFabric, engine, msb, leaves,
		coordcharge.ModePriorityAware, cfg, 6*time.Second)

	step := time.Second
	drive := func(from, to time.Duration) {
		for now := from; now <= to; now += step {
			for _, r := range racks {
				r.Step(now, step)
			}
			engine.Run(now)
		}
	}

	drive(step, 30*time.Second)
	fmt.Println("t=30s  open transition: both rows lose input power")
	msb.Deenergize(30 * time.Second)
	drive(31*time.Second, 36*time.Second)
	msb.Reenergize(36 * time.Second)
	fmt.Println("t=36s  power restored; chargers start at their local defaults")

	for _, mark := range []time.Duration{39 * time.Second, 48 * time.Second, 60 * time.Second} {
		drive(mark-2*time.Second, mark)
		fmt.Printf("t=%-4v charging currents:", mark)
		for _, r := range racks {
			fmt.Printf(" %s=%v", r.Name()[len(r.Name())-5:], r.Pack().Setpoint())
		}
		fmt.Println()
	}

	fmt.Printf("\nmessages delivered over the bus: %d (dropped %d)\n",
		busFabric.Delivered(), busFabric.Dropped())
	fmt.Printf("MSB controller: plans=%d overrides=%d\n",
		upper.Metrics().PlansComputed, upper.Metrics().OverridesIssued)
	fmt.Println("\nThe MSB-level plan (P1 at SLA current, P2/P3 at 1 A) reached every rack")
	fmt.Println("through leaf controllers — no controller ever touched a rack directly.")
}
