// Quickstart: a single rack rides out an open transition on its battery
// backup units and recharges afterwards, comparing the original fixed-5A
// charger against the paper's variable charger (Eq 1).
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	"coordcharge"
)

func main() {
	surface := coordcharge.Fig5Surface()

	for _, policy := range []coordcharge.ChargerPolicy{
		coordcharge.OriginalCharger{},
		coordcharge.VariableCharger{},
	} {
		r := coordcharge.NewRack("web-42", coordcharge.P2, policy, surface)
		r.SetDemand(9 * coordcharge.Kilowatt)

		// A 45-second open transition: the rack input power is lost while a
		// switch board is transferred to its reserve.
		r.LoseInput(0)
		r.Step(45*time.Second, 45*time.Second)
		r.RestoreInput(45 * time.Second)

		fmt.Printf("%s charger:\n", policy.Name())
		fmt.Printf("  depth of discharge after the transition: %v\n", r.LastDOD())
		fmt.Printf("  charging current selected locally:       %v\n", r.Pack().Setpoint())
		fmt.Printf("  recharge power drawn by the rack:        %v\n", r.RechargePower())
		fmt.Printf("  rack input power (IT + recharge):        %v\n", r.Power())

		// Step until the battery is full again.
		now := 45 * time.Second
		for r.Charging() {
			now += 3 * time.Second
			r.Step(now, 3*time.Second)
		}
		d, _ := r.ChargeDuration(now)
		fmt.Printf("  time to fully recharge:                  %v\n\n", d.Round(time.Second))
	}

	// The variable charger's whole point: the recharge spike scales with the
	// energy actually discharged instead of always being worst-case.
	fmt.Println("Eq 1 current selection by depth of discharge:")
	for _, dod := range []coordcharge.Fraction{0.1, 0.3, 0.5, 0.7, 0.9, 1.0} {
		fmt.Printf("  DOD %v -> %v\n", dod, coordcharge.Eq1(dod))
	}
}
