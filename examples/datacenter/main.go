// Datacenter: the paper's headline experiment through the public API — a
// 316-rack MSB (89 P1 / 142 P2 / 85 P3) replaying a synthetic production
// trace takes an MSB-level open transition at the trace's first peak, under
// a constrained 2.3 MW power limit and a medium (≈50 % average DOD) battery
// discharge. Four charging strategies are compared on breaker protection
// (max server capping) and charging-time SLAs.
//
// Run with:
//
//	go run ./examples/datacenter
package main

import (
	"fmt"
	"time"

	"coordcharge"
)

func main() {
	type strategy struct {
		name   string
		mode   coordcharge.Mode
		policy coordcharge.ChargerPolicy
	}
	strategies := []strategy{
		{"original charger (no coordination)", coordcharge.ModeNone, coordcharge.OriginalCharger{}},
		{"variable charger (no coordination)", coordcharge.ModeNone, coordcharge.VariableCharger{}},
		{"global uniform-rate baseline", coordcharge.ModeGlobal, coordcharge.VariableCharger{}},
		{"coordinated priority-aware (Algorithm 1)", coordcharge.ModePriorityAware, coordcharge.VariableCharger{}},
	}

	fmt.Println("MSB: 316 racks, 2.3 MW limit, open transition at the trace peak, ~50% avg DOD")
	fmt.Println()
	for _, s := range strategies {
		res, err := coordcharge.RunExperiment(coordcharge.ExperimentSpec{
			NumP1: 89, NumP2: 142, NumP3: 85,
			Seed:        1,
			MSBLimit:    2.3 * coordcharge.Megawatt,
			Mode:        s.mode,
			LocalPolicy: s.policy,
			AvgDOD:      0.5,
		})
		if err != nil {
			panic(err)
		}
		fmt.Printf("%s\n", s.name)
		fmt.Printf("  peak MSB draw:            %v (limit 2.30 MW)\n", res.PeakPower)
		fmt.Printf("  max server capping:       %v (%.0f%% of IT load)\n",
			res.Metrics.MaxCapping, float64(res.Metrics.MaxCappingFraction)*100)
		fmt.Printf("  SLAs met:                 P1 %d/89, P2 %d/142, P3 %d/85\n",
			res.SLAMet[coordcharge.P1], res.SLAMet[coordcharge.P2], res.SLAMet[coordcharge.P3])
		fmt.Printf("  last battery full after:  %v\n", res.LastChargeDone.Round(time.Minute))
		if len(res.Tripped) > 0 {
			fmt.Printf("  BREAKERS TRIPPED:         %v\n", res.Tripped)
		}
		fmt.Println()
	}
	fmt.Println("The coordinated priority-aware algorithm avoids all server capping while")
	fmt.Println("protecting the charging-time SLAs of the highest-priority racks first.")
}
