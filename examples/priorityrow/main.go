// Priorityrow: the paper's Fig 10 prototype, built through the public API.
//
// A 17-rack row (9 P1, 5 P2, 3 P3) behind one RPP loses input power for a
// few seconds. When power returns, every rack's variable charger starts at
// its local default; the leaf controller then computes the SLA charging
// current for each rack from its priority and depth of discharge and
// overrides the chargers: P1 racks charge at 2 A to make their 30-minute
// SLA, P2 and P3 racks are slowed to 1 A.
//
// Run with:
//
//	go run ./examples/priorityrow
package main

import (
	"fmt"
	"time"

	"coordcharge"
)

func main() {
	surface := coordcharge.Fig5Surface()
	prios := []coordcharge.Priority{
		coordcharge.P1, coordcharge.P1, coordcharge.P1, coordcharge.P1, coordcharge.P1,
		coordcharge.P1, coordcharge.P1, coordcharge.P1, coordcharge.P1,
		coordcharge.P2, coordcharge.P2, coordcharge.P2, coordcharge.P2, coordcharge.P2,
		coordcharge.P3, coordcharge.P3, coordcharge.P3,
	}
	racks := make([]*coordcharge.Rack, len(prios))
	loads := make([]coordcharge.Load, len(prios))
	for i, p := range prios {
		racks[i] = coordcharge.NewRack(fmt.Sprintf("rack%02d", i), p, coordcharge.VariableCharger{}, surface)
		racks[i].SetDemand(9 * coordcharge.Kilowatt)
		loads[i] = racks[i]
	}
	row, err := coordcharge.BuildTopology(coordcharge.TopologySpec{
		Name: "row", RacksPerRPP: len(prios), SBCount: 2,
	}, loads)
	if err != nil {
		panic(err)
	}
	hier, err := coordcharge.BuildControlHierarchy(row, coordcharge.ModePriorityAware,
		coordcharge.DefaultPlannerConfig(), nil, 0)
	if err != nil {
		panic(err)
	}

	// A 6-second open transition at the row's RPP.
	const step = 2 * time.Second
	lose, restore := 30*time.Second, 36*time.Second
	deadline := coordcharge.DefaultDeadlines()
	done := map[string]time.Duration{}
	for now := time.Duration(0); now < 90*time.Minute; now += step {
		if now == lose {
			for _, r := range racks {
				r.LoseInput(now)
			}
		}
		if now == restore {
			for _, r := range racks {
				r.RestoreInput(now)
			}
		}
		for _, r := range racks {
			r.Step(now, step)
		}
		hier.Tick(now)
		for _, r := range racks {
			if d, ok := r.ChargeDuration(now); ok {
				if _, seen := done[r.Name()]; !seen && d > 0 {
					done[r.Name()] = d
				}
			}
		}
		if now == restore+step {
			fmt.Println("charging currents after the controller's overrides:")
			for _, p := range []coordcharge.Priority{coordcharge.P1, coordcharge.P2, coordcharge.P3} {
				for _, r := range racks {
					if r.Priority() == p {
						fmt.Printf("  %s (%v): %v -> %v recharge\n",
							r.Name(), p, r.Pack().Setpoint(), r.RechargePower())
						break // one sample per priority class
					}
				}
			}
			fmt.Println()
		}
	}

	fmt.Println("charge completion against the priority SLAs:")
	for _, r := range racks {
		d := done[r.Name()]
		status := "MET"
		if d == 0 || d > deadline[r.Priority()] {
			status = "MISSED"
		}
		fmt.Printf("  %s %v: charged in %-8v (SLA %v) %s\n",
			r.Name(), r.Priority(), d.Round(time.Second), deadline[r.Priority()], status)
	}
}
