// Reliability: the paper's §IV-A question — how does battery charging time
// affect the availability of redundancy (AOR) of rack power? — answered for
// a custom SLA menu through the public API.
//
// The Monte Carlo draws utility failures, corrective and annual maintenance,
// and power outages from the paper's Table I data, then measures the
// fraction of time the rack battery is fully charged for each candidate
// charging time.
//
// Run with:
//
//	go run ./examples/reliability
package main

import (
	"fmt"
	"time"

	"coordcharge"
)

func main() {
	sim, err := coordcharge.NewReliabilitySimulator(coordcharge.TableI(), 2026)
	if err != nil {
		panic(err)
	}

	const years = 20000
	fmt.Printf("Monte Carlo over %d simulated years of the Table I failure model\n\n", years)
	fmt.Println("charge time   AOR        loss of redundancy")
	var candidates []time.Duration
	for m := 15; m <= 120; m += 15 {
		candidates = append(candidates, time.Duration(m)*time.Minute)
	}
	for _, p := range sim.Sweep(years, candidates) {
		fmt.Printf("  %3.0f min    %8.4f%%   %6.2f hr/year\n",
			p.ChargeTime.Minutes(), float64(p.AOR)*100, p.LossHoursPerYear)
	}

	fmt.Println("\nthe paper's Table II (SLA per priority):")
	for _, row := range sim.TableII(years) {
		fmt.Printf("  %-12s AOR %.2f%%  loss %5.2f hr/yr  SLA %v\n",
			row.Priority, float64(row.AOR)*100, row.LossHoursPerYear, row.ChargeTimeSLA)
	}

	// What-if: a hypothetical P4 tier that tolerates three-hour charges.
	ds := sim.Sweep(years, []time.Duration{3 * time.Hour})
	fmt.Printf("\nwhat-if P4 tier with a 3-hour charge SLA: AOR %.3f%% (%.1f hr/yr)\n",
		float64(ds[0].AOR)*100, ds[0].LossHoursPerYear)
}
