// PSU failure: the hardware-explicit rack model (paper §III-A — two power
// zones, each with three PSU+BBU pairs in a 2+1 redundant arrangement)
// riding through an open transition with a failed power supply.
//
// Demonstrates why the paper defines a "full discharge" as 3,300 W per BBU
// for 90 seconds: with a PSU out, the surviving BBUs in its zone carry a
// larger share and discharge deeper, and their chargers independently pick
// higher recharge currents afterwards.
//
// Run with:
//
//	go run ./examples/psufailure
package main

import (
	"fmt"
	"time"

	"coordcharge"
)

func main() {
	r := coordcharge.NewDetailedRack("db-07", coordcharge.VariableCharger{},
		coordcharge.DefaultBatteryParams())
	r.SetDemand(12 * coordcharge.Kilowatt) // 6 kW per zone

	fmt.Println("healthy rack at 12 kW:")
	fmt.Printf("  battery runtime at this load: %v\n\n", r.Runtime().Round(time.Second))

	// One PSU in zone 0 fails: the 2+1 redundancy absorbs it.
	r.FailPSU(0, 2)
	fmt.Println("after one PSU failure in zone 0 (2+1 redundancy holds):")
	fmt.Printf("  unserved load: %v\n", r.Shortfall())
	fmt.Printf("  battery runtime: %v\n\n", r.Runtime().Round(time.Second))

	// A 60-second open transition.
	r.LoseInput(0)
	r.Step(60*time.Second, 60*time.Second)
	r.RestoreInput(60 * time.Second)

	fmt.Println("depth of discharge and recharge current per BBU after a 60 s transition:")
	for zi, z := range r.Zones() {
		for pi, p := range z.PSUs() {
			status := "ok"
			if p.Failed() {
				status = "FAILED"
			}
			fmt.Printf("  zone %d PSU %d [%s]: DOD %v, charging at %v\n",
				zi, pi, status, p.BBU().DOD(), p.BBU().Setpoint())
		}
	}
	fmt.Printf("\nrack recharge power: %v\n", r.RechargePower())

	// The zone-0 survivors discharged 3 kW each vs 2 kW in zone 1, so their
	// DOD — and with the variable charger, their recharge current — can be
	// higher. A second failure in the same zone would exceed the redundancy:
	r.FailPSU(0, 1)
	fmt.Printf("\nafter a second zone-0 PSU failure: unserved load %v (beyond 2+1)\n", r.Shortfall())
}
