package coordcharge

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"coordcharge/internal/dynamo"
	"coordcharge/internal/obs"
	"coordcharge/internal/rack"
	"coordcharge/internal/rng"
	"coordcharge/internal/scenario"
)

// Kill-and-resume chaos: the crash-safety acceptance for the checkpoint
// subsystem. A storm run with checkpointing armed is hard-stopped at
// randomized ticks — the in-process equivalent of SIGKILL: no final
// checkpoint is written and RunCoordinated returns ErrAborted — then rebuilt
// from the spec and resumed from the last on-disk checkpoint. After the
// final resume completes, the run's summary and flight digest must be
// byte-identical to an uninterrupted run of the same spec. Both control
// planes are covered: the synchronous plane restores state directly, the
// distributed plane restores by verified deterministic replay.

// chaosKills picks the kill offsets, relative to run start, for one seed:
// one inside the grid event (the outage spans [PreRoll, PreRoll+OutageLen),
// with PreRoll at its 2-minute default) and one in the recharge-storm drain
// after restore (which takes hours at stormSpec's breaker limit, so half an
// hour in is safely mid-drain).
func chaosKills(seed int64) []time.Duration {
	r := rng.New(seed * 7919)
	const preRoll = 2 * time.Minute
	outage := preRoll + 5*time.Second + time.Duration(r.Intn(int(80*time.Second)))
	drain := preRoll + 90*time.Second + 5*time.Minute + time.Duration(r.Intn(int(25*time.Minute)))
	return []time.Duration{outage, drain}
}

// runUninterrupted is the control arm: no checkpointing at all, proving on
// the other side that checkpoint writes never perturb the simulation.
func runUninterrupted(t *testing.T, spec scenario.CoordSpec) (summary, digest string) {
	t.Helper()
	spec.Obs = obs.NewSink(0)
	res, err := scenario.RunCoordinated(spec)
	if err != nil {
		t.Fatal(err)
	}
	return res.Summary(), spec.Obs.Flight.Digest()
}

// runWithKills runs the spec with checkpointing every 30 s of virtual time,
// hard-stopping at each kill offset and resuming from the checkpoint file
// with a fresh process-equivalent (new fleet, new control plane, new obs
// sink), then lets the last resume run to completion.
func runWithKills(t *testing.T, spec scenario.CoordSpec, kills []time.Duration) (summary, digest string) {
	t.Helper()
	return runWithKillsVariant(t, spec, kills, nil)
}

// runWithKillsVariant is runWithKills with an optional per-attempt kernel
// override, letting the parity suite resume a checkpoint on a different
// kernel than the one that wrote it.
func runWithKillsVariant(t *testing.T, spec scenario.CoordSpec, kills []time.Duration, kernelAt func(attempt int) string) (summary, digest string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "run.ckpt")
	var start time.Duration
	haveStart := false
	for attempt := 0; ; attempt++ {
		run := spec
		if kernelAt != nil {
			run.Kernel = kernelAt(attempt)
		}
		run.Obs = obs.NewSink(0)
		run.Checkpoint = path
		run.CheckpointEvery = 30 * time.Second
		if attempt > 0 {
			run.Resume = path
		}
		if attempt < len(kills) {
			at := kills[attempt]
			run.HardStop = func(now time.Duration) bool {
				if !haveStart {
					start, haveStart = now, true
				}
				return now-start >= at
			}
		}
		res, err := scenario.RunCoordinated(run)
		if attempt < len(kills) {
			if !errors.Is(err, scenario.ErrAborted) {
				t.Fatalf("kill %d at +%v: err = %v, want ErrAborted", attempt, kills[attempt], err)
			}
			if _, statErr := os.Stat(path); statErr != nil {
				t.Fatalf("kill %d at +%v left no checkpoint: %v", attempt, kills[attempt], statErr)
			}
			continue
		}
		if err != nil {
			t.Fatalf("final resume: %v", err)
		}
		return res.Summary(), run.Obs.Flight.Digest()
	}
}

func checkChaosSeed(t *testing.T, seed int64, distributed bool) {
	t.Helper()
	spec := stormSpec(seed)
	armStorm(&spec)
	spec.Distributed = distributed

	wantSummary, wantDigest := runUninterrupted(t, spec)
	gotSummary, gotDigest := runWithKills(t, spec, chaosKills(seed))

	if gotDigest != wantDigest {
		t.Errorf("flight digest diverged after kill-and-resume:\n  resumed       %s\n  uninterrupted %s", gotDigest, wantDigest)
	}
	if gotSummary != wantSummary {
		t.Errorf("summary diverged after kill-and-resume:\n--- resumed ---\n%s--- uninterrupted ---\n%s", gotSummary, wantSummary)
	}
}

// TestCrashResumeSync covers the synchronous control plane (direct state
// restore).
func TestCrashResumeSync(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			checkChaosSeed(t, seed, false)
		})
	}
}

// TestCrashResumeDistributed covers the message-passing control plane
// (verified replay restore: event closures in the engine queue cannot be
// serialized, so the resume re-executes the timeline and proves it landed on
// the checkpoint's digests).
func TestCrashResumeDistributed(t *testing.T) {
	if testing.Short() {
		t.Skip("full charging-period simulations on the distributed plane")
	}
	for seed := int64(1); seed <= 4; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			checkChaosSeed(t, seed, true)
		})
	}
}

// TestCrashResumeGracefulInterrupt covers the SIGTERM path: Interrupt makes
// the run write a final checkpoint at the exact stop tick and return a
// partial result with Interrupted set; the resume must still be bit-exact.
func TestCrashResumeGracefulInterrupt(t *testing.T) {
	spec := stormSpec(1)
	armStorm(&spec)
	wantSummary, wantDigest := runUninterrupted(t, spec)

	path := filepath.Join(t.TempDir(), "run.ckpt")
	first := spec
	first.Obs = obs.NewSink(0)
	first.Checkpoint = path
	first.CheckpointEvery = time.Hour // cadence never fires; only the final write
	var start time.Duration
	haveStart := false
	stopAt := 7 * time.Minute
	first.Interrupt = func() bool { return haveStart }
	first.HardStop = func(now time.Duration) bool {
		// Abuse HardStop's now-visibility to arm Interrupt at +stopAt; it
		// never stops anything itself.
		if start == 0 && !haveStart {
			start = now
		}
		if now-start >= stopAt {
			haveStart = true
		}
		return false
	}
	res, err := scenario.RunCoordinated(first)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Interrupted {
		t.Fatal("run was not interrupted")
	}

	second := spec
	second.Obs = obs.NewSink(0)
	second.Resume = path
	res2, err := scenario.RunCoordinated(second)
	if err != nil {
		t.Fatal(err)
	}
	if got := second.Obs.Flight.Digest(); got != wantDigest {
		t.Errorf("flight digest diverged after graceful interrupt: %s vs %s", got, wantDigest)
	}
	if got := res2.Summary(); got != wantSummary {
		t.Errorf("summary diverged after graceful interrupt:\n--- resumed ---\n%s--- uninterrupted ---\n%s", got, wantSummary)
	}
}

// enduranceSummary folds an endurance result into a deterministic string for
// byte-equality checks; floats print as hex so equality means bit-exact.
func enduranceSummary(res *scenario.EnduranceResult) string {
	s := fmt.Sprintf("events=%d outages=%d metrics=%+v unserved=%x drops=%d tripped=%v interrupted=%t",
		res.Events, res.Outages, res.Metrics, float64(res.UnservedEnergy),
		res.LoadDropEvents, res.Tripped, res.Interrupted)
	for _, p := range []rack.Priority{rack.P1, rack.P2, rack.P3} {
		s += fmt.Sprintf("\n%s: aor=%x loss=%x", p, float64(res.AOR[p]), res.LossHoursPerYear[p])
	}
	return s
}

// TestCrashResumeEndurance interrupts a multi-year endurance run twice — one
// hard kill and one graceful interrupt, both landing between Table I failure
// events (some mid-recovery, with outage recharges still queued) — and
// requires the resumed run's result bit-identical to an uninterrupted run:
// same AOR per priority (and thus the same P1 ≥ P2 ≥ P3 redundancy
// ordering), zero breaker trips, same fault accounting.
func TestCrashResumeEndurance(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-year endurance runs")
	}
	for seed := int64(1); seed <= 4; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			spec := scenario.EnduranceSpec{Years: 6, Seed: seed, Mode: dynamo.ModePriorityAware}
			base, err := scenario.RunEndurance(spec)
			if err != nil {
				t.Fatal(err)
			}
			want := enduranceSummary(base)

			path := filepath.Join(t.TempDir(), "endurance.ckpt")
			horizon := time.Duration(spec.Years * float64(time.Hour) * 8766)
			r := rng.New(seed * 104729)
			killAt := time.Duration(float64(horizon) * (0.2 + 0.25*r.Float64()))

			kill := spec
			kill.Checkpoint = path
			kill.CheckpointEvery = 24 * time.Hour
			kill.HardStop = func(now time.Duration) bool { return now >= killAt }
			if _, err := scenario.RunEndurance(kill); !errors.Is(err, scenario.ErrAborted) {
				t.Fatalf("hard stop: err = %v, want ErrAborted", err)
			}

			polls := 0
			second := spec
			second.Checkpoint = path
			second.CheckpointEvery = 24 * time.Hour
			second.Resume = path
			second.Interrupt = func() bool { polls++; return polls > 3 }
			mid, err := scenario.RunEndurance(second)
			if err != nil {
				t.Fatal(err)
			}
			if !mid.Interrupted {
				t.Fatal("graceful interrupt did not mark the result")
			}

			final := spec
			final.Resume = path
			res, err := scenario.RunEndurance(final)
			if err != nil {
				t.Fatal(err)
			}
			if got := enduranceSummary(res); got != want {
				t.Errorf("endurance result diverged after kill-and-resume:\n--- resumed ---\n%s\n--- uninterrupted ---\n%s", got, want)
			}
			if len(res.Tripped) != 0 {
				t.Errorf("breakers tripped across resume: %v", res.Tripped)
			}
			if !(res.AOR[rack.P1] >= res.AOR[rack.P2] && res.AOR[rack.P2] >= res.AOR[rack.P3]) {
				t.Errorf("AOR not priority-ordered after resume: %v", res.AOR)
			}
		})
	}
}
